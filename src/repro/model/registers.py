"""Single-writer/multiple-reader registers with the paper's visibility rule.

Section 2.1: process ``p_i`` is the single writer of register ``R_i``;
registers are initialized to ``⊥``.  Section 2.2, Equation (1), pins
down what concurrent activations see: when the set ``σ(t)`` of processes
is activated at time ``t``, *all of them first write, then all of them
read* — so a reader activated at time ``t`` sees, in the register of a
co-activated neighbor, the value that neighbor just wrote, which is the
neighbor's state at the end of its previous activation:

    x̂_p(t) = x_p(t-1)   if p ∈ σ(t)
    x̂_p(t) = x̂_p(t-1)   otherwise.

The :class:`RegisterFile` implements exactly this: the execution engine
calls :meth:`write_all` for the whole activation set before any
:meth:`read` of the step.  Ownership is enforced — a write to a register
by a non-owner raises :class:`~repro.errors.RegisterError` — so a buggy
algorithm cannot silently violate the single-writer discipline.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Tuple

from repro.errors import RegisterError
from repro.types import BOTTOM, ProcessId

__all__ = ["RegisterFile"]


class RegisterFile:
    """The ``n`` single-writer registers ``R_0 .. R_{n-1}``.

    Values are opaque to the register file; algorithms write immutable
    snapshots of their public state (plain tuples), which makes traces
    cheap to record and configurations hashable for the bounded
    explorer.
    """

    def __init__(self, n: int):
        if n < 1:
            raise RegisterError("need at least one register")
        self._values: List[Any] = [BOTTOM] * n
        self._write_counts: List[int] = [0] * n

    @property
    def n(self) -> int:
        """Number of registers."""
        return len(self._values)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def write(self, owner: ProcessId, value: Any) -> None:
        """Write ``value`` into the register owned by ``owner``."""
        self._check(owner)
        self._values[owner] = value
        self._write_counts[owner] += 1

    def write_all(self, writes: Iterable[Tuple[ProcessId, Any]]) -> None:
        """Apply a batch of writes atomically-before-any-read.

        The engine passes the writes of the entire activation set
        ``σ(t)`` here, then performs all reads — realizing Equation (1).
        """
        for owner, value in writes:
            self.write(owner, value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self, register: ProcessId) -> Any:
        """Current content of ``R_register`` (``BOTTOM`` if never written)."""
        self._check(register)
        return self._values[register]

    def read_many(self, registers: Iterable[ProcessId]) -> Tuple[Any, ...]:
        """Read several registers in one local immediate snapshot."""
        return tuple(self.read(r) for r in registers)

    def validate_indices(self, registers: Iterable[ProcessId]) -> Tuple[ProcessId, ...]:
        """Bounds-check a register index tuple once, for later unchecked reads.

        The checked :meth:`read`/:meth:`read_many` path re-validates every
        index on every call — fine for one-off reads, wasteful for an
        execution engine that reads the same (fixed) neighborhood millions
        of times.  Validate the index tuple once with this method, then
        read through :meth:`read_many_unchecked`.
        """
        indices = tuple(registers)
        for r in indices:
            self._check(r)
        return indices

    def read_many_unchecked(self, registers: Iterable[ProcessId]) -> Tuple[Any, ...]:
        """Batch read *pre-validated* indices, skipping per-element checks.

        Only for index tuples previously blessed by
        :meth:`validate_indices` (the fast execution engine's batch-read
        path).  An unvalidated index is *not* diagnosed: too-large
        indices raise a bare ``IndexError`` and negative ones silently
        wrap around — callers wanting :class:`~repro.errors.RegisterError`
        diagnostics must stay on the checked :meth:`read_many` default.
        """
        values = self._values
        return tuple(values[r] for r in registers)

    def write_count(self, register: ProcessId) -> int:
        """How many times ``R_register`` has been written (diagnostics)."""
        self._check(register)
        return self._write_counts[register]

    def snapshot(self) -> Tuple[Any, ...]:
        """Immutable snapshot of all register contents (for traces)."""
        return tuple(self._values)

    def _check(self, register: ProcessId) -> None:
        if not (0 <= register < len(self._values)):
            raise RegisterError(
                f"register index {register} out of range 0..{len(self._values) - 1}"
            )

    def __repr__(self) -> str:
        return f"RegisterFile(n={self.n})"
