"""``engine="auto"``: adaptive engine selection from workload shape.

The repo ships four executable engines — reference, fast, batch, wide
— with one result contract (bit-identical ``ExecutionResult``) and very
different cost profiles.  ``auto`` makes the choice so callers (the
service, campaigns, notebooks) do not have to: a handful of cheap,
deterministic rules over the *shape* of the workload, never its data.

The rules, in order:

1. Anything that needs per-step observation — an execution trace,
   register snapshots, live monitors — runs on ``fast`` (whose own
   gate degrades to the generic loop when a kernel cannot serve the
   request).  The kernel engines do not produce those artifacts, so
   selecting them would change the contract; this rule is what makes
   ``auto`` contract-safe by construction.
2. Replica ensembles (``replicas > 1``) go to ``batch`` — lockstep
   across replicas amortizes the interpreter loop over the ensemble.
3. Single runs go to ``wide`` when the vectorized step can pay for
   itself: numpy importable, a wide kernel registered for the exact
   algorithm type, a schedule family with a *known* expected
   activation-set size, ``n`` at least :data:`WIDE_MIN_N` and the
   expected set size at least :data:`WIDE_MIN_STEP_OCCUPANCY`.
4. Everything else — small ``n``, sparse or opaque schedules, unknown
   algorithm types — stays on ``fast``.

Selection is *optimistic*: the chosen engine's own decline/fallback
gates still apply downstream (``run_wide``/``run_single_batch``
returning ``None`` falls back to ``fast`` inside ``run_execution``),
so a rule here never has to be perfectly tight to be safe.  The
decision and its deciding rule are recorded in the shared metrics
registry (``engine_auto_selected_total{engine=…,reason=…}``) so a
campaign's engine mix is auditable after the fact.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.model.schedule import Schedule
from repro.model.topology import Topology
from repro.obs.metrics import active_registry

__all__ = [
    "WIDE_MIN_N",
    "WIDE_MIN_STEP_OCCUPANCY",
    "select_engine",
]

#: Minimum system size for ``auto`` to pick the wide engine: below
#: this the fast kernel's per-activation loop beats numpy dispatch
#: overhead even on fully-dense schedules.
WIDE_MIN_N = 4096

#: Minimum *expected* activation-set size for the wide engine — the
#: vectorized step must clear the dense-step threshold with room to
#: spare, or the run would execute mostly on the sparse scalar path.
WIDE_MIN_STEP_OCCUPANCY = 256


def _expected_step_occupancy(schedule: Schedule, n: int) -> Optional[float]:
    """Expected activation-set size per step, or ``None`` if unknown.

    Computed from the *exact type* of the schedule (a subclass may
    override step generation, so it gets no credit for its parent's
    shape).  Only the families with vectorized ``steps_wide``
    overrides are recognized; any wrapper or custom adversary is
    opaque and scores ``None``.
    """
    from repro.schedulers.random_async import (
        BernoulliScheduler,
        UniformSubsetScheduler,
    )
    from repro.schedulers.synchronous import SynchronousScheduler

    kind = type(schedule)
    if kind is SynchronousScheduler:
        return float(n)
    if kind is BernoulliScheduler:
        return schedule.p * n
    if kind is UniformSubsetScheduler:
        return (n + 1) / 2
    return None


def _decide(
    algorithm: Any,
    topology: Topology,
    schedule: Schedule,
    *,
    replicas: int,
    record_trace: bool,
    record_registers: bool,
    monitors: Optional[Sequence[Any]],
) -> Tuple[str, str]:
    """The selection rules; returns ``(engine, reason)``."""
    if record_trace or record_registers:
        return "fast", "recording"
    if monitors:
        return "fast", "monitors"
    if replicas > 1:
        return "batch", "replicas"
    from repro.model.batch import load_numpy

    if load_numpy() is None:
        return "fast", "no-numpy"
    from repro.model.wide import WIDE_KERNELS

    if type(algorithm) not in WIDE_KERNELS:
        return "fast", "no-wide-kernel"
    n = topology.n
    occupancy = _expected_step_occupancy(schedule, n)
    if occupancy is None:
        return "fast", "opaque-schedule"
    if n < WIDE_MIN_N:
        return "fast", "small-n"
    if occupancy < WIDE_MIN_STEP_OCCUPANCY:
        return "fast", "sparse-schedule"
    return "wide", "dense-large-n"


def select_engine(
    algorithm: Any,
    topology: Topology,
    schedule: Schedule,
    *,
    replicas: int = 1,
    record_trace: bool = False,
    record_registers: bool = False,
    monitors: Optional[Sequence[Any]] = None,
) -> str:
    """Pick a concrete engine for this workload shape.

    Never returns ``"auto"``; never picks an engine whose result
    contract differs from the reference for the given request (traced,
    register-recording, or monitored runs always land on ``fast``,
    which itself degrades to the generic loop as needed).  The chosen
    engine may still decline the configuration downstream and fall
    back — selection is a fast pre-filter, not a guarantee.
    """
    engine, reason = _decide(
        algorithm, topology, schedule,
        replicas=replicas,
        record_trace=record_trace,
        record_registers=record_registers,
        monitors=monitors,
    )
    registry = active_registry()
    if registry is not None:
        registry.inc("engine_auto_selected_total", engine=engine, reason=reason)
    return engine
