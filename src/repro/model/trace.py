"""Execution traces for invariant checking and debugging.

The proofs in the paper reason about whole executions — e.g. Lemma 4.5
asserts that the *published* identifiers ``X̂_p(t)`` form a proper
coloring at every time ``t`` of every execution.  To test such lemmas we
need more than final outputs: :class:`Trace` records, per time step, the
activation set, the values written, the register-file snapshot, and the
returns.  Recording is opt-in (``record_registers=True`` on the
executor) since snapshots cost O(n) per step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.types import ProcessId

__all__ = ["StepEvent", "Trace"]


@dataclass(frozen=True)
class StepEvent:
    """Everything that happened at one time step ``t``.

    Attributes
    ----------
    time:
        The global time ``t ≥ 1``.
    activated:
        The working processes activated at ``t`` (the paper's ``σ̄(t)``;
        already-returned processes are filtered out by the engine).
    writes:
        ``{p: value}`` for each activated process — the register value
        published at this step (the process's state at the end of its
        previous activation, per Equation (1)).
    returned:
        ``{p: output}`` for the processes that fulfilled their stopping
        condition at this step.
    registers:
        Full register-file snapshot *after* the writes of this step, or
        ``None`` when register recording is off.
    """

    time: int
    activated: FrozenSet[ProcessId]
    writes: Dict[ProcessId, Any]
    returned: Dict[ProcessId, Any]
    registers: Optional[Tuple[Any, ...]]


@dataclass
class Trace:
    """The ordered sequence of :class:`StepEvent` of one execution."""

    events: List[StepEvent] = field(default_factory=list)

    def append(self, event: StepEvent) -> None:
        """Record one step (engine-internal)."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def activations_of(self, p: ProcessId) -> List[int]:
        """The times at which process ``p`` was activated (working)."""
        return [e.time for e in self.events if p in e.activated]

    def return_time_of(self, p: ProcessId) -> Optional[int]:
        """The time at which ``p`` returned, or ``None``."""
        for e in self.events:
            if p in e.returned:
                return e.time
        return None

    def register_history(self, p: ProcessId) -> List[Tuple[int, Any]]:
        """``(time, value)`` pairs for every write to ``R_p``.

        Requires register recording; values repeat when ``p`` rewrites
        the same payload.
        """
        history: List[Tuple[int, Any]] = []
        for e in self.events:
            if p in e.writes:
                history.append((e.time, e.writes[p]))
        return history

    def final_registers(self) -> Optional[Tuple[Any, ...]]:
        """The last recorded register snapshot, if any."""
        for e in reversed(self.events):
            if e.registers is not None:
                return e.registers
        return None
