"""Conformance harness for user-written algorithms.

The engine, the bounded explorer and the shared-memory simulation all
rely on contracts that Python cannot enforce statically:

* states and register payloads must be **immutable and hashable**
  (the explorer hashes configurations; the engine snapshots registers
  by reference);
* ``step`` must be **deterministic** and must not mutate its inputs
  (re-running a recorded schedule must reproduce the execution);
* ``register_value`` must be a pure function of the state;
* a returned process's outcome must carry the final state.

:func:`check_algorithm` drives a candidate algorithm through a battery
of randomized executions and flags contract violations with actionable
messages — the first thing to run when a user-implemented protocol
misbehaves.  It is used by this repo's own test-suite against every
shipped algorithm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.core.algorithm import Algorithm
from repro.model.execution import run_execution
from repro.model.schedule import FiniteSchedule, RecordedSchedule
from repro.model.topology import Cycle, Topology
from repro.schedulers import UniformSubsetScheduler

__all__ = ["ContractReport", "check_algorithm"]


@dataclass
class ContractReport:
    """Findings of one conformance check."""

    violations: List[str] = field(default_factory=list)
    executions: int = 0

    @property
    def ok(self) -> bool:
        """Whether no violation was found."""
        return not self.violations

    def add(self, message: str) -> None:
        """Record one violation (deduplicated)."""
        if message not in self.violations:
            self.violations.append(message)

    def __str__(self) -> str:
        if self.ok:
            return f"contract OK ({self.executions} executions)"
        bullet = "\n  - ".join(self.violations)
        return f"contract VIOLATED ({self.executions} executions):\n  - {bullet}"


def _check_hashable(value: Any, what: str, report: ContractReport) -> None:
    try:
        hash(value)
    except TypeError:
        report.add(
            f"{what} is not hashable ({type(value).__name__}); use plain "
            "tuples / NamedTuples so the explorer can hash configurations"
        )


def check_algorithm(
    algorithm: Algorithm,
    *,
    topology: Optional[Topology] = None,
    inputs: Optional[Sequence[Any]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    max_time: int = 5_000,
) -> ContractReport:
    """Run the conformance battery against ``algorithm``.

    Defaults to ``C_5`` with identifiers ``3, 11, 6, 14, 9``; pass a
    topology/inputs pair matching the algorithm's expectations
    otherwise.  Non-termination within ``max_time`` is *not* a
    violation (the schedule may starve); determinism and immutability
    are checked regardless.
    """
    topology = topology if topology is not None else Cycle(5)
    inputs = list(inputs) if inputs is not None else [3, 11, 6, 14, 9]
    report = ContractReport()

    # --- purity of initial_state / register_value -------------------
    state_a = algorithm.initial_state(inputs[0])
    state_b = algorithm.initial_state(inputs[0])
    if state_a != state_b:
        report.add("initial_state is not deterministic for equal inputs")
    _check_hashable(state_a, "initial_state(...)", report)

    reg_a = algorithm.register_value(state_a)
    reg_b = algorithm.register_value(state_a)
    if reg_a != reg_b:
        report.add("register_value is not a pure function of the state")
    _check_hashable(reg_a, "register_value(...)", report)

    # --- replay determinism + per-step checks -----------------------
    # Pinned to the reference engine: the candidate may violate the
    # very contracts (purity, view-determinism) the fast engine's
    # optimizations assume, so the oracle must run the candidate's
    # ``step`` literally every time.
    for seed in seeds:
        recorder = RecordedSchedule(UniformSubsetScheduler(seed=seed))
        first = run_execution(
            algorithm, topology, inputs, recorder, max_time=max_time,
            engine="reference",
        )
        replay = run_execution(
            algorithm, topology, inputs, recorder.replay(), max_time=max_time,
            engine="reference",
        )
        report.executions += 2
        if first.outputs != replay.outputs:
            report.add(
                f"replaying a recorded schedule changed the outputs "
                f"(seed {seed}): step() is nondeterministic or mutates state"
            )
        if first.activations != replay.activations:
            report.add(
                f"replaying a recorded schedule changed activation counts "
                f"(seed {seed})"
            )
        for p, final_state in first.final_states.items():
            _check_hashable(final_state, f"state of process {p}", report)

    # --- step must not mutate its inputs ----------------------------
    import copy

    from repro.types import BOTTOM

    state = algorithm.initial_state(inputs[0])
    degree = topology.degree(0)
    neighbor_reg = algorithm.register_value(algorithm.initial_state(inputs[1]))
    views = tuple(
        neighbor_reg if i == 0 else BOTTOM for i in range(degree)
    )
    state_copy = copy.deepcopy(state)
    views_copy = copy.deepcopy(views)
    algorithm.step(state, views)
    report.executions += 1
    if state != state_copy:
        report.add("step() mutated the state object passed to it")
    if views != views_copy:
        report.add("step() mutated the views tuple passed to it")

    return report
