"""The asynchronous state-model substrate (paper Section 2).

Subpackage layout:

* :mod:`repro.model.topology` — graphs mediating register visibility;
* :mod:`repro.model.registers` — single-writer/multi-reader registers;
* :mod:`repro.model.schedule` — schedules ``σ`` and adapters;
* :mod:`repro.model.execution` — the reference round engine (Equation (1));
* :mod:`repro.model.fastpath` / :mod:`repro.model.kernels` — the
  observably-identical compiled fast engine (see docs/ENGINE.md);
* :mod:`repro.model.trace` — per-step execution traces;
* :mod:`repro.model.faults` — fail-stop crash injection.
"""

from repro.model.contract import ContractReport, check_algorithm
from repro.model.execution import ENGINES, ExecutionResult, Executor, run_execution
from repro.model.fastpath import FastExecutor
from repro.model.witness import Witness, witness_from_outcome
from repro.model.faults import CrashPlan, crash_after_activations, crash_after_time
from repro.model.registers import RegisterFile
from repro.model.schedule import (
    FiniteSchedule,
    FunctionSchedule,
    RecordedSchedule,
    Schedule,
)
from repro.model.topology import (
    CompleteGraph,
    Cycle,
    GeneralGraph,
    Path,
    Star,
    Topology,
    Torus,
)
from repro.model.trace import StepEvent, Trace

__all__ = [
    "CompleteGraph",
    "ContractReport",
    "CrashPlan",
    "Cycle",
    "ENGINES",
    "ExecutionResult",
    "Executor",
    "FastExecutor",
    "FiniteSchedule",
    "FunctionSchedule",
    "GeneralGraph",
    "Path",
    "RecordedSchedule",
    "RegisterFile",
    "Schedule",
    "Star",
    "StepEvent",
    "Topology",
    "Torus",
    "Trace",
    "Witness",
    "check_algorithm",
    "crash_after_activations",
    "crash_after_time",
    "run_execution",
    "witness_from_outcome",
]
