"""The asynchronous execution engine (paper Sections 2.1–2.2).

One *asynchronous round* of a process is write-then-read-then-update;
when several processes are activated at the same time ``t``, the system
behaves as if all of them first wrote, then all read, then all updated
(Equation (1)).  :class:`Executor` implements exactly this semantics:

1. restrict ``σ(t)`` to *working* processes — those that have neither
   returned nor been dropped by the schedule (``σ̄`` in the paper);
2. publish the register value of every activated process (batch write);
3. let every activated process read the registers of its topology
   neighbors (local immediate snapshot) and run its private update,
   possibly returning an output.

An execution is deterministic given (algorithm, topology, inputs,
schedule); the engine never consults a clock or RNG.  Crashes need no
engine support: a crashed process is simply one the schedule stops
activating (Section 2.2), though :mod:`repro.model.faults` offers a
convenient wrapper.

The *round complexity* of a terminating execution is the maximum number
of working activations over processes, matching the paper's
``max { i | ∃p : p ∈ σ̄(t_p^{(i)}) }``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from time import time as wall_clock
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError, TimeExhaustedError
from repro.model.registers import RegisterFile
from repro.model.schedule import Schedule
from repro.model.topology import Topology
from repro.model.trace import StepEvent, Trace
from repro.obs.metrics import active_registry, record_execution
from repro.obs.spans import Stopwatch
from repro.obs.trace import current_context, is_recording, record_timed
from repro.types import ProcessId

__all__ = [
    "Executor",
    "ExecutionResult",
    "ENGINES",
    "ensure_engine",
    "run_execution",
    "time_exhausted_error",
]

#: Default safety cap on simulated time, so a buggy non-terminating
#: algorithm under an infinite schedule fails fast instead of hanging.
DEFAULT_MAX_TIME = 1_000_000


@dataclass
class ExecutionResult:
    """Everything measurable about one finished execution.

    Attributes
    ----------
    outputs:
        ``{p: color}`` for every process that returned.
    activations:
        ``{p: count}`` of *working* activations for every process
        (0 for processes that never woke up).
    return_times:
        ``{p: t}`` time at which each returning process returned.
    final_time:
        The last time index the engine executed (0 if the schedule was
        empty).
    time_exhausted:
        True when the run stopped because ``max_time`` was hit while
        processes were still working — usually a sign of a bug in a
        supposedly wait-free algorithm, or of too small a cap.
    trace:
        The recorded :class:`~repro.model.trace.Trace`, or ``None``.
    final_states:
        Private state of every process when the run stopped (returned
        processes keep their last state), for white-box assertions.
    """

    n: int
    outputs: Dict[ProcessId, Any]
    activations: Dict[ProcessId, int]
    return_times: Dict[ProcessId, int]
    final_time: int
    time_exhausted: bool
    trace: Optional[Trace]
    final_states: Dict[ProcessId, Any] = field(default_factory=dict)

    @property
    def terminated(self) -> Set[ProcessId]:
        """Processes that returned an output."""
        return set(self.outputs)

    @property
    def pending(self) -> Set[ProcessId]:
        """Processes that never returned (crashed, starved, or cut off)."""
        return {p for p in range(self.n) if p not in self.outputs}

    @property
    def all_terminated(self) -> bool:
        """Whether every process returned."""
        return len(self.outputs) == self.n

    @property
    def round_complexity(self) -> int:
        """Max number of working activations of any process (§2.2)."""
        return max(self.activations.values(), default=0)

    def activation_of(self, p: ProcessId) -> int:
        """Working activations of process ``p``."""
        return self.activations.get(p, 0)

    def __repr__(self) -> str:
        return (
            f"ExecutionResult(n={self.n}, terminated={len(self.outputs)}, "
            f"rounds={self.round_complexity}, final_time={self.final_time})"
        )


def time_exhausted_error(result: ExecutionResult) -> TimeExhaustedError:
    """A diagnosable :class:`TimeExhaustedError` for an exhausted run.

    Shared by both engines: the message names the unreturned processes
    with their activation counts (the first thing one needs to tell a
    starved process from a livelocked one), and the error object
    carries the full partial state.
    """
    pending = sorted(result.pending)
    sample = ", ".join(
        f"p{p}(activations={result.activations.get(p, 0)})"
        for p in pending[:8]
    )
    more = "" if len(pending) <= 8 else f", … +{len(pending) - 8} more"
    ctx = current_context()
    return TimeExhaustedError(
        f"max_time exhausted at t={result.final_time} with "
        f"{len(pending)}/{result.n} processes unreturned: {sample}{more}",
        activations=result.activations,
        final_time=result.final_time,
        pending=pending,
        partial_result=result,
        trace_id=ctx.trace_id if ctx is not None else "",
    )


class Executor:
    """Runs one algorithm on one topology under any schedule.

    Parameters
    ----------
    topology:
        The communication graph mediating register visibility.
    algorithm:
        Any object implementing the per-process protocol of
        :class:`repro.core.algorithm.Algorithm`.
    inputs:
        ``inputs[p]`` is the input (identifier ``X_p``) of process ``p``.
    record_trace:
        Record activation sets, writes and returns per step.
    record_registers:
        Additionally snapshot the whole register file each step (implies
        ``record_trace``); needed for execution-wide invariants such as
        Lemma 4.5.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm,
        inputs: Sequence[Any],
        *,
        record_trace: bool = False,
        record_registers: bool = False,
    ):
        if len(inputs) != topology.n:
            raise ExecutionError(
                f"got {len(inputs)} inputs for {topology.n} processes"
            )
        self.topology = topology
        self.algorithm = algorithm
        self.inputs = list(inputs)
        self.record_trace = record_trace or record_registers
        self.record_registers = record_registers

    def run(
        self,
        schedule: Schedule,
        max_time: int = DEFAULT_MAX_TIME,
        idle_limit: int = 10_000,
        *,
        monitors: Optional[Sequence[Any]] = None,
        raise_on_exhaustion: bool = False,
    ) -> ExecutionResult:
        """Execute the schedule and return the measured result.

        The run stops as soon as every process has returned, when the
        schedule is exhausted, or when ``max_time`` steps have been
        simulated — whichever comes first.  As a simulation cutoff (not
        part of the model), the run also stops after ``idle_limit``
        consecutive steps in which no working process was activated:
        under such a schedule suffix nothing can ever change, so the
        remaining processes are starved forever.  Pass ``idle_limit=0``
        to disable the cutoff.

        ``monitors`` is an optional sequence of
        :class:`repro.obs.monitors.BoundMonitor`-like observers driven
        live: ``on_run_start`` before the first step, ``observe_step``
        after every step activating at least one working process, and
        ``on_run_end`` with the finished result.  With
        ``raise_on_exhaustion=True``, hitting ``max_time`` with
        processes still working raises a diagnosable
        :class:`~repro.errors.TimeExhaustedError` (carrying per-process
        activation counts, the last time index, the unreturned
        processes, and the partial result) instead of returning a
        result with ``time_exhausted`` set.
        """
        topo = self.topology
        alg = self.algorithm
        n = topo.n

        registry = active_registry()
        observing = registry is not None or is_recording()
        mons = list(monitors) if monitors else None
        if mons is not None:
            for m in mons:
                m.on_run_start(topo, alg, self.inputs)
        write_watch = Stopwatch() if observing else None
        update_watch = Stopwatch() if observing else None
        started = perf_counter() if observing else 0.0
        wall_started = wall_clock() if observing else 0.0

        states: Dict[ProcessId, Any] = {
            p: alg.initial_state(self.inputs[p]) for p in topo.processes()
        }
        registers = RegisterFile(n)
        outputs: Dict[ProcessId, Any] = {}
        return_times: Dict[ProcessId, int] = {}
        activations: Dict[ProcessId, int] = {p: 0 for p in topo.processes()}
        trace = Trace() if self.record_trace else None

        time = 0
        idle_streak = 0
        time_exhausted = False
        for raw_step in schedule.steps(n):
            if len(outputs) == n:
                break
            time += 1
            if time > max_time:
                time -= 1
                time_exhausted = True
                break

            # The paper's σ̄(t): drop processes whose stopping condition
            # was already fulfilled.
            working = frozenset(p for p in raw_step if p not in outputs)
            if not working:
                # A step activating only finished processes costs no
                # activations; record nothing but keep time advancing.
                idle_streak += 1
                if trace is not None:
                    trace.append(
                        StepEvent(time, working, {}, {},
                                  registers.snapshot() if self.record_registers else None)
                    )
                if idle_limit and idle_streak >= idle_limit:
                    break
                continue
            idle_streak = 0

            # Phase 1 — all activated processes write.
            if write_watch is not None:
                write_watch.tick()
            writes: Dict[ProcessId, Any] = {}
            for p in working:
                value = alg.register_value(states[p])
                writes[p] = value
            registers.write_all(writes.items())
            if write_watch is not None:
                write_watch.tock()

            # Phase 2+3 — each activated process reads its neighbors'
            # registers and performs its private update.  Writes all
            # happened above, and updates only touch private state, so
            # per-process iteration order is immaterial.
            if update_watch is not None:
                update_watch.tick()
            returned: Dict[ProcessId, Any] = {}
            for p in working:
                views = registers.read_many(topo.neighbors(p))
                outcome = alg.step(states[p], views)
                activations[p] += 1
                if outcome.returned:
                    outputs[p] = outcome.output
                    return_times[p] = time
                    returned[p] = outcome.output
                states[p] = outcome.state
            if update_watch is not None:
                update_watch.tock()

            if mons is not None:
                for m in mons:
                    m.observe_step(time, working, returned, activations)

            if trace is not None:
                trace.append(
                    StepEvent(
                        time,
                        working,
                        writes,
                        returned,
                        registers.snapshot() if self.record_registers else None,
                    )
                )

        result = ExecutionResult(
            n=n,
            outputs=outputs,
            activations=activations,
            return_times=return_times,
            final_time=time,
            time_exhausted=time_exhausted,
            trace=trace,
            final_states=states,
        )
        if observing:
            alg_name = type(alg).__name__
            elapsed = perf_counter() - started
            if registry is not None:
                record_execution(
                    registry, "reference", alg_name, result, elapsed=elapsed
                )
            record_timed(
                "engine_run", wall_started, elapsed,
                {"engine": "reference", "algorithm": alg_name,
                 "final_time": result.final_time},
            )
            write_watch.flush(
                "engine_phase", registry, engine="reference", phase="write"
            )
            update_watch.flush(
                "engine_phase", registry, engine="reference", phase="update"
            )
        if mons is not None:
            for m in mons:
                m.on_run_end(result)
        if raise_on_exhaustion and result.time_exhausted:
            raise time_exhausted_error(result)
        return result


#: Engine registry for :func:`run_execution`.  ``"fast"`` is the
#: compiled fast path of :mod:`repro.model.fastpath`; ``"batch"`` is
#: the lockstep ensemble engine of :mod:`repro.model.batch` (for a
#: single run it executes a batch of one, falling back to ``"fast"``
#: where batching doesn't apply); ``"wide"`` is the node-vectorized
#: single-run engine of :mod:`repro.model.wide` (whole activation sets
#: per step, falling back to ``"fast"`` likewise); ``"auto"`` picks
#: among them from the workload shape (:mod:`repro.model.select`).
#: All are observably identical to ``"reference"`` (this module's
#: :class:`Executor`), which is retained everywhere as the semantics
#: oracle.
ENGINES = ("fast", "batch", "wide", "reference", "auto")


def ensure_engine(engine: str) -> str:
    """Validate an engine name eagerly, before any run starts.

    Raises the one-line :class:`ExecutionError` every entry point
    (CLI, service, campaigns, ensembles) surfaces verbatim, instead of
    letting an unknown name travel deep into a run loop and come back
    as a traceback.
    """
    if engine not in ENGINES:
        raise ExecutionError(
            f"unknown engine {engine!r} (known: {', '.join(ENGINES)})"
        )
    return engine


def run_execution(
    algorithm,
    topology: Topology,
    inputs: Sequence[Any],
    schedule: Schedule,
    *,
    max_time: int = DEFAULT_MAX_TIME,
    record_trace: bool = False,
    record_registers: bool = False,
    engine: str = "fast",
    monitors: Optional[Sequence[Any]] = None,
    raise_on_exhaustion: bool = False,
) -> ExecutionResult:
    """One-shot convenience wrapper around an execution engine.

    ``engine="fast"`` (the default) runs the compiled fast path of
    :mod:`repro.model.fastpath`; ``engine="reference"`` runs this
    module's :class:`Executor`.  The two are *observably identical* —
    the differential equivalence harness asserts bit-identical
    :class:`ExecutionResult`\\ s — so the choice is purely about speed
    vs. having the straight-from-the-paper loop in the stack trace.

    Example
    -------
    >>> from repro.core.fast_coloring5 import FastFiveColoring
    >>> from repro.model.topology import Cycle
    >>> from repro.schedulers.synchronous import SynchronousScheduler
    >>> result = run_execution(
    ...     FastFiveColoring(), Cycle(5), [10, 3, 77, 42, 5],
    ...     SynchronousScheduler())
    >>> result.all_terminated
    True
    """
    ensure_engine(engine)
    if engine == "auto":
        from repro.model.select import select_engine

        engine = select_engine(
            algorithm, topology, schedule,
            record_trace=record_trace,
            record_registers=record_registers,
            monitors=monitors,
        )
    if engine == "wide":
        # Same contract gate as batch: the wide kernels produce no
        # trace/register history and run no monitors, so those requests
        # fall back to the fast engine (whose own gate falls further
        # back to the generic loop as needed).
        if not record_trace and not record_registers and not monitors:
            from repro.model.wide import run_wide

            result = run_wide(
                algorithm, topology, inputs, schedule, max_time=max_time
            )
            if result is not None:
                if raise_on_exhaustion and result.time_exhausted:
                    raise time_exhausted_error(result)
                return result
        engine = "fast"
    if engine == "batch":
        # The batch engine covers plain (untraced, unmonitored) runs of
        # kernel-supported configurations; anything else falls back to
        # the fast engine, mirroring the fast engine's own kernel gate.
        if not record_trace and not record_registers and not monitors:
            from repro.model.batch import run_single_batch

            result = run_single_batch(
                algorithm, topology, inputs, schedule, max_time=max_time
            )
            if result is not None:
                if raise_on_exhaustion and result.time_exhausted:
                    raise time_exhausted_error(result)
                return result
        engine = "fast"
    if engine == "fast":
        from repro.model.fastpath import FastExecutor as executor_cls
    elif engine == "reference":
        executor_cls = Executor
    else:
        raise ExecutionError(
            f"unknown engine {engine!r} (known: {', '.join(ENGINES)})"
        )
    executor = executor_cls(
        topology,
        algorithm,
        inputs,
        record_trace=record_trace,
        record_registers=record_registers,
    )
    return executor.run(
        schedule,
        max_time=max_time,
        monitors=monitors,
        raise_on_exhaustion=raise_on_exhaustion,
    )
