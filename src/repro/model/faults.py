"""Fail-stop fault injection (paper Section 2.2).

In the paper's model a *crash* is not a separate event: a crashed
process is simply one that the schedule never activates again after
some time.  :class:`CrashPlan` packages that idea as a composable
schedule wrapper, so any scheduler — synchronous, random, adversarial —
can be combined with any crash pattern, and the wait-freedom claims
(survivors terminate and are properly colored regardless of who
crashes when) can be swept systematically (experiment E8).

Two crash triggers are supported per process:

* crash at a global *time* ``t`` — the process takes no step at any
  time ``≥ t``;
* crash after *k activations* — the process is removed once it has
  been activated ``k`` times (this models "a process takes a few steps
  and dies", the pattern used in Lemma 4.8-style scenarios).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import ScheduleError
from repro.model.schedule import ActivationSet, Schedule, validate_step
from repro.types import ProcessId

__all__ = ["CrashPlan", "crash_after_time", "crash_after_activations"]


class CrashPlan(Schedule):
    """Wrap a schedule, censoring activations of crashed processes.

    Parameters
    ----------
    inner:
        The underlying schedule (who *would* be activated).
    crash_times:
        ``{p: t}`` — process ``p`` takes no step at any time ``≥ t``.
        ``t = 1`` means the process never wakes up at all.
    crash_after:
        ``{p: k}`` — process ``p`` is censored after having been
        activated ``k`` times (``k = 0`` means never activated).

    A process may appear in both maps; whichever trigger fires first
    wins.  Processes not mentioned never crash.
    """

    def __init__(
        self,
        inner: Schedule,
        crash_times: Optional[Dict[ProcessId, int]] = None,
        crash_after: Optional[Dict[ProcessId, int]] = None,
    ):
        self._inner = inner
        self._crash_times = dict(crash_times or {})
        self._crash_after = dict(crash_after or {})
        for p, t in self._crash_times.items():
            if t < 1:
                raise ScheduleError(f"crash time for {p} must be >= 1, got {t}")
        for p, k in self._crash_after.items():
            if k < 0:
                raise ScheduleError(f"crash activation count for {p} must be >= 0")

    @property
    def reusable(self) -> bool:
        """Reusable iff the wrapped schedule is (censor state is local)."""
        return self._inner.reusable

    def steps(self, n: int) -> Iterator[ActivationSet]:
        seen: Dict[ProcessId, int] = {}
        for time, step in enumerate(self._inner.steps(n), start=1):
            step = validate_step(step, n)
            alive = set()
            for p in step:
                if p in self._crash_times and time >= self._crash_times[p]:
                    continue
                if p in self._crash_after and seen.get(p, 0) >= self._crash_after[p]:
                    continue
                alive.add(p)
                seen[p] = seen.get(p, 0) + 1
            yield frozenset(alive)

    @property
    def crashed_processes(self) -> set:
        """Processes subject to some crash trigger."""
        return set(self._crash_times) | set(self._crash_after)


def crash_after_time(inner: Schedule, crash_times: Dict[ProcessId, int]) -> CrashPlan:
    """Shorthand for a time-triggered :class:`CrashPlan`."""
    return CrashPlan(inner, crash_times=crash_times)


def crash_after_activations(inner: Schedule, crash_after: Dict[ProcessId, int]) -> CrashPlan:
    """Shorthand for an activation-count-triggered :class:`CrashPlan`."""
    return CrashPlan(inner, crash_after=crash_after)
