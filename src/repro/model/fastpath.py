"""The compiled fast-path execution engine.

Observably identical to :class:`repro.model.execution.Executor` —
same :class:`~repro.model.execution.ExecutionResult`, bit for bit,
including activation counts, return times, traces and final states —
but engineered for throughput.  The equivalence is not an aspiration:
``tests/model/test_fastpath_equivalence.py`` replays seeded random,
adversarial and synchronous schedules through both engines across
every registered algorithm and asserts identical results, and the
reference engine remains available everywhere (``engine="reference"``)
as the semantics oracle.

Two tiers, selected automatically per run:

**Compiled kernels** (:mod:`repro.model.kernels`).  For the shipped
algorithms on low-degree topologies, a *kernel* is a fused
engine+algorithm loop over parallel arrays of plain ints: no
``NamedTuple`` state objects, no ``StepOutcome`` wrappers, no
per-activation method dispatch.  Kernels are built once per executor
(the "compilation" step: neighbor arrays, specialization choices and
algorithm parameters are all resolved up front) and give a 5–10×
speedup over the reference engine.  Tracing runs bypass kernels —
traces need the exact per-step register payload objects.

**The generic fast path.**  For any other (algorithm, topology) pair,
the same write/read/update semantics as the reference engine with the
per-activation overheads removed:

* each process's neighbor tuple is resolved once at init instead of
  calling ``topology.neighbors(p)`` per activation;
* register indices are validated once and reads go through the
  unchecked batch path of :class:`~repro.model.registers.RegisterFile`;
* ``algorithm.register_value(state)`` is cached per process and only
  recomputed when the state object actually changed;
* schedules are consumed through
  :meth:`~repro.model.schedule.Schedule.steps_fast`, the reusable
  array/range step representation, instead of per-step ``frozenset``
  churn;
* a *quiescent* process — one whose last update was a no-op and whose
  neighborhood registers are unchanged — is not re-stepped when the
  algorithm declares itself view-deterministic
  (:attr:`repro.core.algorithm.Algorithm.view_deterministic`): by
  purity the outcome would be identical, so only the activation
  counter advances.

Fast-engine note: the :class:`~repro.model.registers.RegisterFile`
write *counts* (a diagnostics-only facility, not part of any result)
are not maintained by this engine.
"""

from __future__ import annotations

from time import perf_counter
from time import time as wall_clock
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ExecutionError
from repro.model.execution import (
    DEFAULT_MAX_TIME,
    ExecutionResult,
    time_exhausted_error,
)
from repro.model.registers import RegisterFile
from repro.model.schedule import Schedule
from repro.model.topology import Topology
from repro.model.trace import StepEvent, Trace
from repro.obs.metrics import active_registry, record_execution
from repro.obs.trace import is_recording, record_timed

__all__ = ["FastExecutor"]


class FastExecutor:
    """Drop-in fast replacement for :class:`~repro.model.execution.Executor`.

    Construction mirrors the reference executor; :meth:`run` returns a
    bit-identical :class:`~repro.model.execution.ExecutionResult`.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm,
        inputs: Sequence[Any],
        *,
        record_trace: bool = False,
        record_registers: bool = False,
    ):
        if len(inputs) != topology.n:
            raise ExecutionError(
                f"got {len(inputs)} inputs for {topology.n} processes"
            )
        self.topology = topology
        self.algorithm = algorithm
        self.inputs = list(inputs)
        self.record_trace = record_trace or record_registers
        self.record_registers = record_registers
        # Resolved once: the per-process neighbor tuples the reference
        # engine re-fetches on every activation.
        self._neighbors: List[tuple] = [
            topology.neighbors(p) for p in topology.processes()
        ]
        # Kernel compilation happens once per executor; tracing runs
        # need the generic path (kernels skip payload materialization).
        self._kernel = None
        if not self.record_trace:
            from repro.model.kernels import build_kernel

            self._kernel = build_kernel(algorithm, topology, self.inputs)

    def run(
        self,
        schedule: Schedule,
        max_time: int = DEFAULT_MAX_TIME,
        idle_limit: int = 10_000,
        *,
        monitors: Optional[Sequence[Any]] = None,
        raise_on_exhaustion: bool = False,
    ) -> ExecutionResult:
        """Execute the schedule; same semantics as ``Executor.run``.

        Monitored runs take the generic fast path — a fused kernel
        cannot call out per step, exactly like tracing runs.  Metric
        emission is computed post hoc from the finished result, so the
        kernel inner loops stay untouched and the disabled-mode cost is
        one registry check per *run*.
        """
        if self._kernel is not None and not monitors:
            registry = active_registry()
            observing = registry is not None or is_recording()
            started = perf_counter() if observing else 0.0
            wall = wall_clock() if observing else 0.0
            result = self._kernel(schedule, max_time, idle_limit)
            if observing:
                elapsed = perf_counter() - started
                alg_name = type(self.algorithm).__name__
                if registry is not None:
                    record_execution(
                        registry, "fast", alg_name, result, elapsed=elapsed
                    )
                record_timed(
                    "engine_run", wall, elapsed,
                    {"engine": "fast", "algorithm": alg_name, "path": "kernel",
                     "final_time": result.final_time},
                )
            if raise_on_exhaustion and result.time_exhausted:
                raise time_exhausted_error(result)
            return result
        return self._run_generic(
            schedule,
            max_time,
            idle_limit,
            monitors=monitors,
            raise_on_exhaustion=raise_on_exhaustion,
        )

    # ------------------------------------------------------------------
    # Generic fast path
    # ------------------------------------------------------------------
    def _run_generic(
        self,
        schedule: Schedule,
        max_time: int,
        idle_limit: int,
        *,
        monitors: Optional[Sequence[Any]] = None,
        raise_on_exhaustion: bool = False,
    ) -> ExecutionResult:
        alg = self.algorithm
        n = self.topology.n
        record_trace = self.record_trace
        record_registers = self.record_registers
        neighbors = self._neighbors

        registers = RegisterFile(n)
        for p in range(n):
            registers.validate_indices(neighbors[p])
        values = registers._values  # unchecked batch read/write target

        states: List[Any] = [alg.initial_state(x) for x in self.inputs]
        # register_value cache, keyed on state object identity.
        reg_cache_state: List[Any] = [None] * n
        reg_cache_value: List[Any] = [None] * n
        # Quiescence bookkeeping (view-deterministic algorithms only):
        # stable[p] means p's last executed step was a no-op from its
        # current state under last_views[p].
        skip_quiescent = getattr(alg, "view_deterministic", False) is True
        stable = [False] * n
        last_views: List[Any] = [None] * n

        done = [False] * n
        outputs: Dict[int, Any] = {}
        return_times: Dict[int, int] = {}
        activations = [0] * n
        trace = Trace() if record_trace else None

        registry = active_registry()
        observing = registry is not None or is_recording()
        started = perf_counter() if observing else 0.0
        wall = wall_clock() if observing else 0.0
        mons = list(monitors) if monitors else None
        if mons is not None:
            for m in mons:
                m.on_run_start(self.topology, alg, self.inputs)

        time = 0
        idle_streak = 0
        time_exhausted = False
        remaining = n

        for raw_step in schedule.steps_fast(n):
            if remaining == 0:
                break
            time += 1
            if time > max_time:
                time -= 1
                time_exhausted = True
                break

            working = [p for p in raw_step if not done[p]]
            if not working:
                idle_streak += 1
                if trace is not None:
                    trace.append(
                        StepEvent(
                            time, frozenset(), {}, {},
                            registers.snapshot() if record_registers else None,
                        )
                    )
                if idle_limit and idle_streak >= idle_limit:
                    break
                continue
            idle_streak = 0

            # Phase 1 — batch write, with the register payload cached
            # until the state object changes.
            writes: Optional[Dict[int, Any]] = {} if record_trace else None
            for p in working:
                state = states[p]
                if reg_cache_state[p] is not state:
                    reg_cache_value[p] = alg.register_value(state)
                    reg_cache_state[p] = state
                value = reg_cache_value[p]
                values[p] = value
                if writes is not None:
                    writes[p] = value

            # Phase 2+3 — snapshot reads and private updates.
            returned: Dict[int, Any] = {}
            for p in working:
                activations[p] += 1
                views = tuple(values[q] for q in neighbors[p])
                if stable[p] and views == last_views[p]:
                    # Quiescent: same state, same views, pure step —
                    # the outcome is the same no-op.  Only the
                    # activation counter advances.
                    continue
                state = states[p]
                outcome = alg.step(state, views)
                if outcome.returned:
                    outputs[p] = outcome.output
                    return_times[p] = time
                    returned[p] = outcome.output
                    done[p] = True
                    remaining -= 1
                    states[p] = outcome.state
                else:
                    new_state = outcome.state
                    if skip_quiescent:
                        stable[p] = new_state == state
                        last_views[p] = views
                    states[p] = new_state

            if mons is not None:
                for m in mons:
                    m.observe_step(time, working, returned, activations)

            if trace is not None:
                trace.append(
                    StepEvent(
                        time,
                        frozenset(working),
                        writes,
                        returned,
                        registers.snapshot() if record_registers else None,
                    )
                )

        result = ExecutionResult(
            n=n,
            outputs=outputs,
            activations={p: activations[p] for p in range(n)},
            return_times=return_times,
            final_time=time,
            time_exhausted=time_exhausted,
            trace=trace,
            final_states={p: states[p] for p in range(n)},
        )
        if observing:
            elapsed = perf_counter() - started
            alg_name = type(alg).__name__
            if registry is not None:
                record_execution(
                    registry, "fast", alg_name, result, elapsed=elapsed
                )
            record_timed(
                "engine_run", wall, elapsed,
                {"engine": "fast", "algorithm": alg_name, "path": "generic",
                 "final_time": result.final_time},
            )
        if mons is not None:
            for m in mons:
                m.on_run_end(result)
        if raise_on_exhaustion and result.time_exhausted:
            raise time_exhausted_error(result)
        return result
