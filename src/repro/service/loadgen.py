"""Closed-loop load generator for the simulation service.

Drives ``POST /v1/color`` with a deterministic request mix from
``concurrency`` worker threads (each with its own keep-alive
:class:`~repro.service.client.ServiceClient`) and reports throughput,
latency percentiles and the status/provenance split.  Three things
make it more than a curl loop:

* **Deterministic mix** — request ``i`` is a duplicate (drawn
  round-robin from a small working set, exercising the cache) iff
  ``i % 100 < duplicates * 100``; unique requests walk distinct seeds
  of one configuration, which is exactly the shape the coalescer can
  pack into lockstep batches.  No RNG: rerunning a burst replays it.
* **Provenance accounting** — 200-responses are split into computed /
  cached / coalesced (``batch_size > 1``) from the response bodies,
  so a run shows *why* it was fast.
* **Backpressure honesty** — by default 429s are counted, never
  retried: the generator measures the service's shedding behavior
  instead of hammering through it.  ``retry=True`` flips the burst
  into client mode: each worker retries retryable outcomes under its
  own deterministically-seeded
  :class:`~repro.chaos.resilience.BackoffPolicy` (honoring
  ``Retry-After``), and the summary reports retry totals plus an
  attempts histogram.  The default stays off so the deterministic
  shedding assertions in the test suite keep holding.

Used by ``repro-color loadgen``, the CI smoke job, the chaos harness
and the ``BENCH_service.json`` benchmark.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.chaos.resilience import BackoffPolicy
from repro.service.client import ServiceClient, ServiceReply
from repro.service.schema import ColorRequest

__all__ = ["build_mix", "run_loadgen", "percentile"]


def percentile(ordered: List[float], q: float) -> float:
    """The ``q``-quantile of an ascending-sorted sample (0 on empty)."""
    if not ordered:
        return 0.0
    index = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[index]


def build_mix(
    requests: int,
    *,
    duplicates: float = 0.0,
    algorithm: str = "fast5",
    n: int = 64,
    inputs: str = "random",
    schedule: str = "bernoulli",
    max_time: int = 200_000,
    seed_base: int = 0,
    working_set: int = 4,
) -> List[ColorRequest]:
    """The deterministic request list of one burst (see module docs)."""
    if not 0.0 <= duplicates <= 1.0:
        raise ValueError(f"duplicates must be in [0, 1], got {duplicates}")
    hot = [
        ColorRequest.build(
            algorithm, n, inputs=inputs, schedule=schedule,
            seed=seed_base + k, max_time=max_time,
        )
        for k in range(max(1, working_set))
    ]
    mix: List[ColorRequest] = []
    threshold = duplicates * 100.0
    fresh_seed = seed_base + max(1, working_set)
    for i in range(requests):
        if (i % 100) < threshold:
            mix.append(hot[i % len(hot)])
        else:
            mix.append(
                ColorRequest.build(
                    algorithm, n, inputs=inputs, schedule=schedule,
                    seed=fresh_seed, max_time=max_time,
                )
            )
            fresh_seed += 1
    return mix


def run_loadgen(
    host: str = "127.0.0.1",
    port: int = 8731,
    *,
    requests: int = 100,
    concurrency: int = 8,
    duplicates: float = 0.0,
    algorithm: str = "fast5",
    n: int = 64,
    inputs: str = "random",
    schedule: str = "bernoulli",
    max_time: int = 200_000,
    seed_base: int = 0,
    working_set: int = 4,
    timeout: float = 60.0,
    mix: Optional[List[ColorRequest]] = None,
    retry: bool = False,
    retry_policy: Optional[BackoffPolicy] = None,
    deadline: Optional[float] = None,
    collect: Optional[Callable[[int, ColorRequest, ServiceReply], None]] = None,
) -> Dict[str, Any]:
    """Fire one closed-loop burst and return the JSON-shaped summary.

    ``mix`` overrides the generated request list (the benchmark passes
    hand-built legs).  Workers pull from a shared cursor, so the burst
    is work-conserving regardless of per-request latency variance.

    ``retry=True`` arms per-worker resilience: worker ``k`` retries
    with ``retry_policy`` re-seeded to ``seed + k`` (default policy:
    the :class:`BackoffPolicy` defaults), bounded by ``deadline``
    seconds of wall clock per request when given.  The summary then
    counts final statuses — a 500 that succeeded on retry reports as
    its eventual 200 — plus a ``retries`` block with the attempts
    histogram.  ``collect`` (called under the summary lock with
    ``(index, request, reply)``) lets a harness capture reply bodies
    for invariant checking without re-requesting.
    """
    if mix is None:
        mix = build_mix(
            requests,
            duplicates=duplicates,
            algorithm=algorithm,
            n=n,
            inputs=inputs,
            schedule=schedule,
            max_time=max_time,
            seed_base=seed_base,
            working_set=working_set,
        )
    total = len(mix)
    cursor = {"next": 0}
    lock = threading.Lock()
    latencies: List[float] = []
    statuses: Dict[str, int] = {}
    outcomes = {"computed": 0, "cached": 0, "coalesced": 0, "errors": 0}
    # Non-2xx replies, with the server trace id when tracing is on —
    # the handle that joins a failed request to /debug/trace.  Bounded:
    # a fully-shed burst must not balloon the summary.
    failures: List[Dict[str, Any]] = []
    max_failures = 32
    attempts_histogram: Dict[str, int] = {}
    retries_total = {"count": 0}
    base_policy = retry_policy if retry_policy is not None else BackoffPolicy()

    def worker(worker_index: int) -> None:
        # Each worker's backoff stream is seeded from its index, so a
        # rerun of the same burst replays the same delays per worker.
        resilience = (
            base_policy.clone(seed=base_policy.seed + worker_index)
            if retry
            else None
        )
        with ServiceClient(
            host, port, timeout=timeout,
            resilience=resilience, deadline=deadline,
        ) as client:
            while True:
                with lock:
                    i = cursor["next"]
                    if i >= total:
                        return
                    cursor["next"] = i + 1
                request = mix[i]
                started = time.perf_counter()
                try:
                    reply = client.color(request)
                except Exception:  # noqa: BLE001 - counted, not raised
                    with lock:
                        outcomes["errors"] += 1
                    continue
                elapsed = time.perf_counter() - started
                body = reply.body if isinstance(reply.body, dict) else {}
                with lock:
                    latencies.append(elapsed)
                    key = str(reply.status)
                    statuses[key] = statuses.get(key, 0) + 1
                    bucket = str(reply.attempts)
                    attempts_histogram[bucket] = (
                        attempts_histogram.get(bucket, 0) + 1
                    )
                    retries_total["count"] += reply.attempts - 1
                    if collect is not None:
                        collect(i, request, reply)
                    if reply.status == 200:
                        if body.get("cached"):
                            outcomes["cached"] += 1
                        elif body.get("batch_size", 1) > 1:
                            outcomes["coalesced"] += 1
                        else:
                            outcomes["computed"] += 1
                    elif len(failures) < max_failures:
                        failure = {
                            "index": i,
                            "status": reply.status,
                            "request_key": request.request_key,
                        }
                        if reply.trace_id:
                            failure["trace_id"] = reply.trace_id
                        failures.append(failure)

    threads = [
        threading.Thread(
            target=worker, args=(k,), name=f"loadgen-{k}", daemon=True
        )
        for k in range(max(1, concurrency))
    ]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started

    latencies.sort()
    ok = sum(count for code, count in statuses.items() if code.startswith("2"))
    shed = statuses.get("429", 0)
    return {
        "requests": total,
        "concurrency": max(1, concurrency),
        "duplicates": duplicates,
        "wall_seconds": wall,
        "requests_per_sec": (total / wall) if wall > 0 else 0.0,
        "statuses": statuses,
        "ok": ok,
        "shed": shed,
        "outcomes": outcomes,
        "failures": failures,
        "retries": {
            "enabled": retry,
            "total": retries_total["count"],
            "attempts_histogram": dict(sorted(attempts_histogram.items())),
        },
        "latency_ms": {
            "p50": percentile(latencies, 0.50) * 1000.0,
            "p95": percentile(latencies, 0.95) * 1000.0,
            "p99": percentile(latencies, 0.99) * 1000.0,
            "max": (latencies[-1] * 1000.0) if latencies else 0.0,
        },
        "workload": {
            "algorithm": algorithm,
            "topology": f"cycle({n})",
            "inputs": inputs,
            "schedule": schedule,
            "max_time": max_time,
        },
    }
