"""repro.service — simulation-as-a-service over the execution engines.

The long-lived serving surface of the reproduction (see
``docs/SERVICE.md``): a stdlib-only (``asyncio`` + ``http``) HTTP
server that executes coloring requests with content-addressed result
caching, single-flight dedup, coalescing of compatible requests into
the vectorized batch engine, and explicit backpressure.

Layering (each module imports only downward):

* :mod:`repro.service.schema` — validated requests/responses, keyed
  by the campaign content-hash discipline;
* :mod:`repro.service.cache` — LRU result cache + single-flight;
* :mod:`repro.service.coalesce` — bounded admission, batch packing,
  engine dispatch;
* :mod:`repro.service.server` — the asyncio HTTP endpoint, graceful
  drain, ``/healthz`` and ``/metrics``;
* :mod:`repro.service.client` — blocking stdlib client;
* :mod:`repro.service.loadgen` — deterministic closed-loop load
  generator.
"""

from repro.service.cache import LRUCache, SingleFlight
from repro.service.client import ServiceClient, ServiceReply
from repro.service.coalesce import Coalescer
from repro.service.loadgen import build_mix, run_loadgen
from repro.service.schema import ColorRequest, ColorResponse
from repro.service.server import ColorServer, ServerThread, serve

__all__ = [
    "ColorRequest",
    "ColorResponse",
    "LRUCache",
    "SingleFlight",
    "Coalescer",
    "ColorServer",
    "ServerThread",
    "serve",
    "ServiceClient",
    "ServiceReply",
    "build_mix",
    "run_loadgen",
]
