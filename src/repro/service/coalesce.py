"""Admission control and request coalescing into the batch engine.

The service's execution pipeline, between the cache and the engines:

1. **Admission** — a bounded queue.  :meth:`Coalescer.submit` sheds
   with :class:`~repro.errors.BackpressureError` (the server's 429)
   the moment the number of admitted-but-unfinished requests reaches
   ``queue_limit``: explicit backpressure instead of unbounded memory
   growth and collapsing latency.
2. **Single-flight** — concurrent identical requests collapse onto one
   computation before ever reaching the queue (see
   :mod:`repro.service.cache`).
3. **Coalescing** — a batcher task drains the queue, waits at most
   ``coalesce_window`` seconds for company, groups compatible requests
   by the same signature the campaign batch packer uses —
   ``(algorithm, topology, n, max_time)``; seeds, input families and
   schedules are free to differ — and runs each group as *one*
   lockstep :func:`repro.model.batch.run_batch` call.  Singleton
   groups route through adaptive engine selection
   (:mod:`repro.model.select`): a solo large-``n`` cold miss runs on
   the node-vectorized wide engine, everything else (and whatever the
   kernels decline) on the fast path.  Either way the per-request
   results are bit-identical to what a solo run would produce — the
   equivalence tests pin this against the reference engine.

The coalescing window is *adaptive*: the batcher only holds a batch
open while other admitted requests are actually pending.  The moment
the pipeline is otherwise idle the batch flushes immediately, so
coalescing never costs latency when there is nothing to coalesce —
a lone cold request pays execution time, not execution time plus the
window.

Executions are CPU-bound, so groups run on a thread-pool executor by
default; when a :class:`~repro.pool.WorkerPool` is attached they run
in warm worker *processes* instead, which is what lets a multi-core
box serve cold misses faster than a single core (the thread executor
is GIL-bound).  Either way the event loop stays free to serve cache
hits, health checks and metric scrapes while a batch computes, and
the per-request responses are bit-identical — the pool path is pinned
against the in-process reference by the same equivalence tests.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from dataclasses import dataclass, replace
from time import perf_counter
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.chaos.injector import maybe_fault
from repro.errors import BackpressureError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    TraceContext,
    active_recorder,
    current_context,
    record_event,
    start_span,
    use_context,
)
from repro.service.cache import LRUCache, SingleFlight
from repro.service.schema import ColorRequest, ColorResponse

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.pool import WorkerPool

__all__ = ["Coalescer", "execute_requests"]


def execute_requests(
    requests: List[ColorRequest],
) -> Tuple[List[Any], str]:
    """Run one compatible group synchronously; returns (results, engine).

    Pure and thread-safe (runs on executor threads): resolves fresh
    algorithm/schedule objects per request, so no state leaks between
    runs.  ``len(requests) > 1`` attempts one lockstep batch first;
    the per-run fast path is the fallback whenever the batched kernels
    decline the configuration.
    """
    from repro.campaign.registry import (
        resolve_algorithm,
        resolve_inputs,
        resolve_schedule,
        resolve_topology,
    )
    from repro.model.batch import run_batch
    from repro.model.execution import run_execution

    first = requests[0]
    topology = resolve_topology(first.topology, first.n)
    inputs_list = [
        resolve_inputs(r.inputs, r.n, r.seed) for r in requests
    ]
    schedules = [
        resolve_schedule(r.schedule, seed=r.seed, **dict(r.schedule_params))
        for r in requests
    ]
    if len(requests) > 1:
        results = run_batch(
            [resolve_algorithm(r.algorithm)() for r in requests],
            topology,
            inputs_list,
            schedules,
            max_time=first.max_time,
        )
        if results is not None:
            return results, "batch"
        # The kernels declined (unsupported configuration): fresh
        # schedules for the fallback — the batch attempt may have
        # consumed stream state.
        schedules = [
            resolve_schedule(r.schedule, seed=r.seed, **dict(r.schedule_params))
            for r in requests
        ]
    else:
        # Solo cold miss: adaptive selection — a single large-n request
        # under a dense schedule is exactly the wide engine's workload.
        # run_wide declines (None) before consuming the schedule stream,
        # so the fast fallback below can reuse the same instance.
        from repro.model.select import select_engine
        from repro.model.wide import run_wide

        choice = select_engine(
            resolve_algorithm(first.algorithm)(), topology, schedules[0]
        )
        if choice == "wide":
            result = run_wide(
                resolve_algorithm(first.algorithm)(),
                topology,
                inputs_list[0],
                schedules[0],
                max_time=first.max_time,
            )
            if result is not None:
                return [result], "wide"
    results = [
        run_execution(
            resolve_algorithm(r.algorithm)(),
            topology,
            inputs,
            schedule,
            max_time=r.max_time,
            engine="fast",
        )
        for r, inputs, schedule in zip(requests, inputs_list, schedules)
    ]
    return results, "fast"


def _execute_traced(
    requests: List[ColorRequest], ctx: Optional[TraceContext]
) -> Tuple[List[Any], str]:
    """:func:`execute_requests` on an executor thread, under ``ctx``.

    Executor threads do not inherit the submitting task's contextvars,
    so the trace context crosses the thread boundary explicitly here.
    """
    if ctx is None:
        return execute_requests(requests)
    with use_context(ctx):
        with start_span("service.execute") as sp:
            results, engine = execute_requests(requests)
            sp.set_attribute("engine", engine)
        return results, engine


@dataclass
class _WorkItem:
    request: ColorRequest
    key: str
    # Trace context captured at submit() time — the batcher task runs
    # under its own (empty) contextvar context, so causality must ride
    # the work item, not the ambient context.
    ctx: Optional[TraceContext] = None


class Coalescer:
    """The cache-fronted, backpressured, coalescing execution pipeline.

    Owns the :class:`LRUCache`, the :class:`SingleFlight` table, the
    bounded admission queue and the batcher task.  Use as an async
    context manager, or call :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        *,
        cache_size: int = 1024,
        queue_limit: int = 64,
        max_batch: int = 32,
        coalesce_window: float = 0.002,
        executor: Optional[concurrent.futures.Executor] = None,
        pool: Optional["WorkerPool"] = None,
        registry: Optional[MetricsRegistry] = None,
        pool_task_timeout: Optional[float] = None,
    ):
        if queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {queue_limit}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.cache = LRUCache(cache_size)
        self.flight = SingleFlight()
        self.queue_limit = queue_limit
        self.max_batch = max_batch
        self.coalesce_window = coalesce_window
        self.registry = registry
        self._executor = executor
        self._owns_executor = executor is None
        self.pool = pool
        # Per-attempt hang deadline for pool-executed groups: without
        # one, a worker hung by a fault (or a genuine wedge) would hold
        # its group's waiters forever — every request must reach a
        # definite status.  ``None`` preserves the no-deadline default.
        self.pool_task_timeout = pool_task_timeout
        # Loop-bound primitives are created in start(), on the serving
        # loop: on Python 3.9 a Queue constructed off-loop would bind
        # whatever loop the constructing thread had.
        self._queue: Optional["asyncio.Queue[_WorkItem]"] = None
        self._admitted = 0
        self._executing = 0
        self._idle: Optional[asyncio.Event] = None
        self._batcher: Optional[asyncio.Task] = None
        self._group_tasks: set = set()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        if self._batcher is not None:
            return
        self._queue = asyncio.Queue()
        self._idle = asyncio.Event()
        self._idle.set()
        if self._executor is None and self.pool is None:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=2, thread_name_prefix="repro-service"
            )
        self._batcher = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Cancel the batcher and fail whatever is still in flight."""
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except (asyncio.CancelledError, Exception):
                pass
            self._batcher = None
        for task in list(self._group_tasks):
            task.cancel()
        for key in list(self.flight._inflight):
            self.flight.reject(key, asyncio.CancelledError())
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    async def __aenter__(self) -> "Coalescer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every admitted request has finished.

        Returns ``True`` when the pipeline emptied within ``timeout``
        seconds (``None`` = wait forever) — the graceful-shutdown hook.
        """
        if self._idle is None:
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # -- bookkeeping ---------------------------------------------------
    @property
    def depth(self) -> int:
        """Admitted-but-unfinished requests (queued or executing)."""
        return self._admitted

    def _admit(self) -> None:
        self._admitted += 1
        self._idle.clear()
        if self.registry is not None:
            self.registry.set_gauge("service_queue_depth", self._admitted)

    def _retire(self, count: int) -> None:
        self._admitted -= count
        self._executing -= count
        if self._admitted <= 0:
            self._admitted = 0
            self._idle.set()
        if self._executing < 0:
            self._executing = 0
        if self.registry is not None:
            self.registry.set_gauge("service_queue_depth", self._admitted)

    def _inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        if self.registry is not None:
            self.registry.inc(name, value, **labels)

    # -- request path --------------------------------------------------
    async def submit(self, request: ColorRequest) -> ColorResponse:
        """Serve one validated request through cache → dedup → queue.

        Raises :class:`BackpressureError` when the admission queue is
        full.  The returned response is private to the caller (cache
        hits are copies flagged ``cached=True``).
        """
        if self._queue is None:
            raise RuntimeError("Coalescer.submit before start()")
        key = request.request_key
        ctx = current_context() if active_recorder() is not None else None
        hit = self.cache.get(key)
        if hit is not None and not hit.digest_ok:
            # The stored response no longer matches its content seal
            # (bit flip, corrupting bug): drop it and recompute rather
            # than serve a corrupt result.  The chaos harness drives
            # this path deliberately via the ``cache.bitflip`` site.
            self.cache.invalidate(key)
            self._inc("service_cache_digest_failures_total")
            record_event("cache.digest_mismatch", context=ctx, request_key=key)
            hit = None
        if hit is not None:
            self._inc("service_cache_hits_total")
            record_event("cache.hit", context=ctx, request_key=key)
            return replace(hit, cached=True)
        self._inc("service_cache_misses_total")

        future, leader = self.flight.claim(key)
        if not leader:
            self._inc("service_singleflight_joins_total")
            record_event("singleflight.join", context=ctx, request_key=key)
            return replace(await self.flight.wait(future), cached=True)

        if self._admitted >= self.queue_limit:
            # The claim must not leak: fail it so a concurrent
            # follower of this doomed request is shed too.
            error = BackpressureError(
                f"admission queue full ({self._admitted}/{self.queue_limit})",
                retry_after=self._retry_after_hint(),
            )
            self.flight.reject(key, error)
            self._inc("service_shed_total")
            raise error

        self._admit()
        self._queue.put_nowait(_WorkItem(request=request, key=key, ctx=ctx))
        return await self.flight.wait(future)

    def _retry_after_hint(self) -> float:
        """Crude capacity hint: a full queue of batchable work drains
        roughly one coalesced group per execution slot."""
        return max(1.0, self.queue_limit / max(1, self.max_batch))

    # -- batcher -------------------------------------------------------
    def _pending_elsewhere(self, batch_size: int) -> int:
        """Admitted requests neither executing nor already in this
        batch — i.e. still waiting in the queue.  Submissions enqueue
        synchronously with admission, so zero here means the pipeline
        is idle apart from this batch and the window can flush."""
        return self._admitted - self._executing - batch_size

    async def _run(self) -> None:
        while True:
            item = await self._queue.get()
            batch = [item]
            if self.coalesce_window > 0 and self.max_batch > 1:
                loop = asyncio.get_event_loop()
                deadline = loop.time() + self.coalesce_window
                while len(batch) < self.max_batch:
                    try:
                        batch.append(self._queue.get_nowait())
                        continue
                    except asyncio.QueueEmpty:
                        pass
                    # Idle-flush: hold the window open only while other
                    # admitted requests are on their way; a lone
                    # request never waits for company that cannot come.
                    if self._pending_elsewhere(len(batch)) <= 0:
                        break
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self._queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break

            groups: Dict[Tuple[str, str, int, int], List[_WorkItem]] = {}
            for work in batch:
                groups.setdefault(work.request.group_key, []).append(work)
            for group in groups.values():
                # Groups execute as independent tasks so the batcher
                # keeps coalescing the next wave while they run.
                self._executing += len(group)
                task = asyncio.ensure_future(self._execute_group(group))
                self._group_tasks.add(task)
                task.add_done_callback(self._group_tasks.discard)

    async def _execute_group(self, group: List[_WorkItem]) -> None:
        requests = [w.request for w in group]
        # The first sampled submitter leads the batch: the batch span
        # hangs under its request span, and every other traced member
        # records a follower link event pointing at the leader's batch
        # so a coalesced wait is attributable from either side.
        leader_ctx = next(
            (w.ctx for w in group if w.ctx is not None and w.ctx.sampled),
            None,
        )
        batch_span = start_span(
            "coalesce.batch", context=leader_ctx, batch_size=len(group)
        )
        started = perf_counter()
        try:
            with batch_span:
                batch_ctx = batch_span.context
                if batch_ctx is not None:
                    for work in group:
                        if (
                            work.ctx is not None
                            and work.ctx.sampled
                            and work.ctx is not leader_ctx
                        ):
                            record_event(
                                "coalesce.follower",
                                context=work.ctx,
                                leader_trace_id=batch_ctx.trace_id,
                                leader_span_id=batch_ctx.span_id,
                            )
                if self.pool is not None:
                    # Warm-process path: the worker executes, verifies
                    # and serializes; only JSON-shaped dicts cross the
                    # process boundary (the trace context included) and
                    # the event loop never burns engine CPU.
                    outcome = await asyncio.wrap_future(
                        self.pool.submit_group(
                            [r.config() for r in requests],
                            timeout=self.pool_task_timeout,
                            trace=(
                                batch_ctx.to_dict()
                                if batch_ctx is not None
                                else None
                            ),
                        )
                    )
                    engine = outcome.value["engine"]
                    responses = [
                        ColorResponse.from_dict(d)
                        for d in outcome.value["responses"]
                    ]
                else:
                    loop = asyncio.get_event_loop()
                    results, engine = await loop.run_in_executor(
                        self._executor, _execute_traced, requests, batch_ctx
                    )
                    responses = None
                batch_span.set_attribute("engine", engine)
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
            for work in group:
                self.flight.reject(work.key, exc)
            self._inc("service_errors_total", len(group))
            self._retire(len(group))
            return
        elapsed = perf_counter() - started
        if self.registry is not None:
            self.registry.observe("service_batch_occupancy", len(group))
            self.registry.observe("service_exec_seconds", elapsed)
        if len(group) > 1:
            self._inc("service_coalesced_requests_total", len(group))
        if responses is None:
            share = elapsed / len(group)
            responses = [
                ColorResponse.from_execution(
                    work.request,
                    result,
                    engine=engine,
                    batch_size=len(group),
                    elapsed=share,
                )
                for work, result in zip(group, results)
            ]
        for work, response in zip(group, responses):
            stored = response
            decision = maybe_fault("cache.bitflip", self.registry)
            if decision is not None:
                # Corrupt only the *stored* copy (the current waiters
                # still get the genuine response): the seeded bit flip
                # is there to prove the digest check catches silent
                # cache corruption on the next hit.
                stored = replace(
                    response,
                    colors_used=list(response.colors_used) + ["__bitflip__"],
                )
            self.cache.put(work.key, stored)
            self.flight.resolve(work.key, response)
        self._retire(len(group))
