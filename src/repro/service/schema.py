"""Request/response schema of the simulation service.

A :class:`ColorRequest` is a *description* of one coloring execution —
the same JSON-round-trippable shape as a campaign
:class:`~repro.campaign.spec.TaskSpec`, minus the engine choice (the
service picks the engine: coalesced requests run on the batch engine,
singletons on the fast path, and the engines are observably
identical).  Validation is strict: unknown fields, unknown registry
names and out-of-range sizes are rejected with
:class:`~repro.errors.RequestValidationError` before any work is
admitted, so the serving layer never materializes objects from an
unvetted description.

Keys follow the repo-wide content-hash discipline
(:mod:`repro.util.hashing`, shared with ``campaign.spec``):
:attr:`ColorRequest.request_key` is the canonical hash of the
engine-free configuration and doubles as the cache / single-flight
key, while :meth:`ColorRequest.task_spec` produces the journal-
compatible :class:`TaskSpec` (whose hash additionally pins the engine
that actually ran).  Because both hashes are computed by the same
helper over the same field names, service keys and campaign hashes
cannot drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.campaign.registry import (
    ALGORITHMS,
    INPUT_FAMILIES,
    SCHEDULERS,
    TOPOLOGIES,
)
from repro.campaign.spec import TaskSpec
from repro.errors import RequestValidationError
from repro.util.hashing import canonical_hash

__all__ = [
    "MAX_N",
    "MAX_TIME_CAP",
    "ColorRequest",
    "ColorResponse",
]

#: Hard cap on the cycle size a single request may ask for — a serving
#: process must bound the memory and CPU one admission can consume.
MAX_N = 65_536

#: Hard cap on the simulated-time budget of one request.
MAX_TIME_CAP = 10_000_000

#: The request fields the schema knows; anything else is a typo that
#: would otherwise silently change the cache key.
_FIELDS = frozenset(
    {
        "algorithm",
        "topology",
        "n",
        "inputs",
        "schedule",
        "schedule_params",
        "seed",
        "max_time",
    }
)


def _require_int(value: Any, field: str) -> int:
    # bool is an int subclass; `true` is not a size.
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestValidationError(
            f"field {field!r} must be an integer, got {type(value).__name__}",
            field=field,
        )
    return value


def _require_registered(name: Any, registry: Mapping[str, Any], field: str) -> str:
    if not isinstance(name, str):
        raise RequestValidationError(
            f"field {field!r} must be a string, got {type(name).__name__}",
            field=field,
        )
    # Unlike campaign specs, service requests may not use dotted import
    # paths: the server must never import code named by a client.
    if name not in registry:
        known = ", ".join(sorted(registry))
        raise RequestValidationError(
            f"unknown {field} {name!r} (known: {known})", field=field
        )
    return name


@dataclass(frozen=True)
class ColorRequest:
    """One validated coloring execution request.

    Construct with :meth:`from_json_dict` (the HTTP path) or
    :meth:`build` (in-process callers); both validate.  Instances are
    frozen and hashable, so they can key dictionaries directly.
    """

    algorithm: str
    n: int
    topology: str = "cycle"
    inputs: str = "random"
    schedule: str = "sync"
    schedule_params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 0
    max_time: int = 200_000

    # -- construction --------------------------------------------------
    @classmethod
    def build(
        cls,
        algorithm: str,
        n: int,
        *,
        topology: str = "cycle",
        inputs: str = "random",
        schedule: str = "sync",
        schedule_params: Optional[Mapping[str, Any]] = None,
        seed: int = 0,
        max_time: int = 200_000,
    ) -> "ColorRequest":
        request = cls(
            algorithm=algorithm,
            n=n,
            topology=topology,
            inputs=inputs,
            schedule=schedule,
            schedule_params=tuple(sorted((schedule_params or {}).items())),
            seed=seed,
            max_time=max_time,
        )
        request.validate()
        return request

    @classmethod
    def from_json_dict(cls, payload: Any) -> "ColorRequest":
        """Parse and validate one decoded JSON request body."""
        if not isinstance(payload, dict):
            raise RequestValidationError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - _FIELDS)
        if unknown:
            raise RequestValidationError(
                f"unknown request field(s): {', '.join(unknown)}",
                field=unknown[0],
            )
        for required in ("algorithm", "n"):
            if required not in payload:
                raise RequestValidationError(
                    f"missing required field {required!r}", field=required
                )
        params = payload.get("schedule_params") or {}
        if not isinstance(params, dict):
            raise RequestValidationError(
                "field 'schedule_params' must be a JSON object",
                field="schedule_params",
            )
        return cls.build(
            algorithm=payload["algorithm"],
            n=_require_int(payload["n"], "n"),
            topology=payload.get("topology", "cycle"),
            inputs=payload.get("inputs", "random"),
            schedule=payload.get("schedule", "sync"),
            schedule_params=params,
            seed=_require_int(payload.get("seed", 0), "seed"),
            max_time=_require_int(payload.get("max_time", 200_000), "max_time"),
        )

    def validate(self) -> None:
        """Fail fast on anything the serving layer must not admit."""
        _require_registered(self.algorithm, ALGORITHMS, "algorithm")
        _require_registered(self.topology, TOPOLOGIES, "topology")
        _require_registered(self.inputs, INPUT_FAMILIES, "inputs")
        _require_registered(self.schedule, SCHEDULERS, "schedule")
        _require_int(self.n, "n")
        _require_int(self.seed, "seed")
        _require_int(self.max_time, "max_time")
        if not 3 <= self.n <= MAX_N:
            raise RequestValidationError(
                f"n must be in [3, {MAX_N}], got {self.n}", field="n"
            )
        if not 1 <= self.max_time <= MAX_TIME_CAP:
            raise RequestValidationError(
                f"max_time must be in [1, {MAX_TIME_CAP}], got {self.max_time}",
                field="max_time",
            )
        for key, value in self.schedule_params:
            if not isinstance(key, str):
                raise RequestValidationError(
                    "schedule_params keys must be strings",
                    field="schedule_params",
                )
            if isinstance(value, (dict, list)):
                raise RequestValidationError(
                    f"schedule_params[{key!r}] must be a JSON scalar",
                    field="schedule_params",
                )

    # -- identity ------------------------------------------------------
    def config(self) -> Dict[str, Any]:
        """The engine-free run configuration, in TaskSpec field names."""
        return {
            "algorithm": self.algorithm,
            "topology": self.topology,
            "n": self.n,
            "inputs": self.inputs,
            "schedule": self.schedule,
            "schedule_params": [list(kv) for kv in self.schedule_params],
            "seed": self.seed,
            "max_time": self.max_time,
        }

    @property
    def request_key(self) -> str:
        """Cache / single-flight key: canonical hash of :meth:`config`.

        The engine is deliberately *not* part of the key — the engines
        are observably identical (the differential harnesses pin it),
        so a result computed by one may be served for a request that
        another engine would have run.
        """
        return canonical_hash(self.config())

    @property
    def group_key(self) -> Tuple[str, str, int, int]:
        """Coalescing signature, matching the campaign batch packer:
        requests agreeing on it may run in one lockstep batch."""
        return (self.algorithm, self.topology, self.n, self.max_time)

    def task_spec(self, engine: str) -> TaskSpec:
        """The journal-compatible TaskSpec of this request under
        ``engine`` — its ``task_hash`` records how a result was
        actually produced."""
        return TaskSpec(
            algorithm=self.algorithm,
            topology=self.topology,
            n=self.n,
            inputs=self.inputs,
            schedule=self.schedule,
            schedule_params=self.schedule_params,
            seed=self.seed,
            max_time=self.max_time,
            engine=engine,
        )

    def label(self) -> str:
        return (
            f"{self.algorithm}/{self.topology}{self.n}/{self.inputs}"
            f"/{self.schedule}/s{self.seed}"
        )


@dataclass
class ColorResponse:
    """One served execution result, JSON-shaped.

    The *deterministic* sections (verdict, activations, colors,
    exhaustion diagnostics) are pure functions of the request — equal
    across engines, cache hits and coalesced batches, which is what
    the equivalence tests assert.  The *provenance* sections (engine,
    cached, batch_size, elapsed, task_hash) record how this particular
    response was produced.

    ``content_digest`` seals the deterministic sections with their
    canonical hash at construction time, so any later corruption of a
    stored response (the chaos layer's cache bit-flip site, a buggy
    serializer) is detectable by :meth:`digest_ok` before the response
    is served from cache.  It is excluded from
    :meth:`deterministic_dict` — it is a seal *over* that payload, not
    part of it.
    """

    request_key: str
    task_hash: str
    engine: str
    cached: bool
    batch_size: int
    verdict: Dict[str, Any]
    activations: Dict[str, Any]
    colors_used: list
    time_exhausted: Optional[Dict[str, Any]]
    elapsed: float
    content_digest: str = ""

    @classmethod
    def from_execution(
        cls,
        request: ColorRequest,
        result: Any,
        *,
        engine: str,
        batch_size: int = 1,
        elapsed: float = 0.0,
    ) -> "ColorResponse":
        """Verify one finished execution and distill it into a response.

        Mirrors :func:`repro.campaign.worker.task_result_from_execution`
        — same verification, same measurements — so a service response
        and a campaign journal row for the same configuration agree.
        """
        from repro.analysis.verify import verify_execution
        from repro.campaign.registry import resolve_palette, resolve_topology

        topology = resolve_topology(request.topology, request.n)
        verdict = verify_execution(
            topology, result, palette=resolve_palette(request.algorithm)
        )
        counts = list(result.activations.values())
        exhausted: Optional[Dict[str, Any]] = None
        if result.time_exhausted:
            exhausted = {
                "final_time": result.final_time,
                "pending": sorted(result.pending),
                "activations": {
                    str(p): result.activations.get(p, 0)
                    for p in sorted(result.pending)
                },
            }
        response = cls(
            request_key=request.request_key,
            task_hash=request.task_spec(engine).task_hash,
            engine=engine,
            cached=False,
            batch_size=batch_size,
            verdict={
                "ok": verdict.ok and result.all_terminated,
                "all_terminated": result.all_terminated,
                "terminated": len(result.outputs),
                "proper": verdict.proper,
                "palette_ok": verdict.palette_ok,
            },
            activations={
                "round_complexity": result.round_complexity,
                "total": sum(counts),
                "max": max(counts) if counts else 0,
                "mean": (sum(counts) / len(counts)) if counts else 0.0,
                "final_time": result.final_time,
            },
            colors_used=sorted({str(c) for c in result.outputs.values()}),
            time_exhausted=exhausted,
            elapsed=elapsed,
        )
        response.content_digest = response.compute_digest()
        return response

    def compute_digest(self) -> str:
        """Canonical hash of the deterministic payload as it is *now*."""
        return canonical_hash(self.deterministic_dict())

    @property
    def digest_ok(self) -> bool:
        """Does the stored seal still match the deterministic payload?

        Responses without a seal (older serializations) pass vacuously.
        """
        return (
            not self.content_digest
            or self.content_digest == self.compute_digest()
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "request_key": self.request_key,
            "task_hash": self.task_hash,
            "engine": self.engine,
            "cached": self.cached,
            "batch_size": self.batch_size,
            "verdict": self.verdict,
            "activations": self.activations,
            "colors_used": self.colors_used,
            "time_exhausted": self.time_exhausted,
            "elapsed": self.elapsed,
            "content_digest": self.content_digest,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ColorResponse":
        return cls(
            request_key=d["request_key"],
            task_hash=d["task_hash"],
            engine=d["engine"],
            cached=bool(d["cached"]),
            batch_size=int(d["batch_size"]),
            verdict=dict(d["verdict"]),
            activations=dict(d["activations"]),
            colors_used=list(d["colors_used"]),
            time_exhausted=(
                dict(d["time_exhausted"])
                if d.get("time_exhausted") is not None
                else None
            ),
            elapsed=float(d["elapsed"]),
            content_digest=str(d.get("content_digest", "")),
        )

    def deterministic_dict(self) -> Dict[str, Any]:
        """The engine-/provenance-independent sections only — the part
        that must be bit-identical however the request was executed."""
        return {
            "request_key": self.request_key,
            "verdict": self.verdict,
            "activations": self.activations,
            "colors_used": self.colors_used,
            "time_exhausted": self.time_exhausted,
        }
