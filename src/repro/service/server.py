"""The HTTP serving surface: asyncio + stdlib, no frameworks.

``ColorServer`` binds a plain HTTP/1.1 endpoint (keep-alive, JSON
bodies) on top of the :class:`~repro.service.coalesce.Coalescer`
pipeline.  Routes:

* ``POST /v1/color`` — execute (or serve from cache) one validated
  :class:`~repro.service.schema.ColorRequest`.  Responses: **200**
  with the :class:`ColorResponse` JSON (including ``time_exhausted``
  diagnostics when the simulation hit its ``max_time`` — the verdict
  carries ``ok: false`` but the HTTP exchange succeeded); **400** on
  schema violations; **429** + ``Retry-After`` when the admission
  queue sheds; **503** while draining; **504** when the per-request
  wall-clock timeout expires (the computation keeps running and lands
  in the cache for the retry).
* ``GET /healthz`` — liveness + queue/cache gauges; ``status`` flips
  to ``"draining"`` during graceful shutdown.
* ``GET /metrics`` — Prometheus text exposition of the service
  registry (``service_*`` series plus the engines' ``engine_*``
  series), rendered by :func:`repro.obs.exposition.render_prometheus`.
* ``GET /debug/trace`` — the flight recorder (last N completed spans)
  as Chrome trace-event JSON, loadable directly in Perfetto; 404 when
  the server runs with tracing off.  Read-only and bounded: the
  recorder is a fixed-capacity ring, so the response size is capped.

Tracing (``trace="on"`` / ``"sample=K"``): every ``/v1/color``
exchange carries the ``X-Repro-Trace-Id`` header in both directions —
a client-sent context is honored verbatim, otherwise the server mints
one (sampling every Kth request) — and the request's span tree
(request → coalesce.batch → pool.task/service.execute → engine_run)
lands in the flight recorder, pool-worker spans included.

Graceful shutdown (:func:`serve` installs SIGTERM/SIGINT handlers):
stop accepting, answer in-flight work, drain the pipeline up to
``drain_timeout`` seconds, exit 0.

The hand-rolled request parsing is deliberately minimal — HTTP/1.1
with ``Content-Length`` bodies only (no chunked encoding, no TLS) —
because the service fronts trusted load generators and campaign
clients, not the open internet.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import signal
import sys
from typing import Any, Dict, Optional, Tuple

from repro.chaos.injector import (
    active_plan,
    install_plan,
    maybe_fault,
    uninstall_plan,
)
from repro.chaos.plan import FaultPlan
from repro.errors import (
    BackpressureError,
    RequestValidationError,
    ServiceError,
)
from repro.obs.exposition import render_prometheus
from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.trace import (
    TRACE_HEADER,
    FlightRecorder,
    TraceContext,
    current_context,
    disable_tracing,
    enable_tracing,
    render_chrome_json,
    start_span,
    use_context,
)
from repro.pool import WorkerPool
from repro.service.coalesce import Coalescer
from repro.service.schema import ColorRequest

__all__ = ["ColorServer", "ServerThread", "serve"]

#: Cap on accepted request bodies; a color request is a few hundred
#: bytes, so anything bigger is garbage or abuse.
MAX_BODY_BYTES = 64 * 1024

_JSON_HEADERS = {"Content-Type": "application/json"}


def _parse_trace_mode(mode: Any) -> int:
    """``--trace`` mode → sampling period: 0 = off, 1 = every request
    (``on``), K = every Kth request (``sample=K``)."""
    if mode in (None, False, "", "off"):
        return 0
    if mode in (True, "on"):
        return 1
    if isinstance(mode, str) and mode.startswith("sample="):
        try:
            k = int(mode.split("=", 1)[1])
        except ValueError:
            k = 0
        if k >= 1:
            return k
    raise ServiceError(
        f"invalid trace mode {mode!r} (expected off, on, or sample=K)"
    )


class ColorServer:
    """One serving endpoint over one event loop.

    ``port=0`` binds an ephemeral port; the bound port is available as
    :attr:`port` after :meth:`start` — the pattern the tests and the
    in-process benchmark harness rely on.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_size: int = 1024,
        queue_limit: int = 64,
        max_batch: int = 32,
        coalesce_window: float = 0.002,
        request_timeout: float = 30.0,
        executor_workers: int = 2,
        pool_workers: int = 0,
        registry: Optional[MetricsRegistry] = None,
        trace: Any = "off",
        trace_buffer: int = 4096,
        chaos: Optional[FaultPlan] = None,
        pool_task_timeout: Optional[float] = None,
    ):
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        # Fault plan to install for the server's lifetime (start() to
        # shutdown()); the env export ships it to pool workers.
        self.chaos = chaos
        self._installed_chaos = False
        self.registry = registry if registry is not None else MetricsRegistry()
        # Tracing: 0 = off, 1 = every request, K = every Kth request.
        # The recorder exists iff tracing is on; it becomes the
        # process-global active recorder for the server's lifetime
        # (enabled in start(), disabled in shutdown()).
        self._trace_every = _parse_trace_mode(trace)
        self.recorder: Optional[FlightRecorder] = (
            FlightRecorder(trace_buffer) if self._trace_every else None
        )
        self._trace_counter = 0
        self.executor_workers = executor_workers
        self.pool_workers = pool_workers
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._pool: Optional[WorkerPool] = None
        self.coalescer = Coalescer(
            cache_size=cache_size,
            queue_limit=queue_limit,
            max_batch=max_batch,
            coalesce_window=coalesce_window,
            registry=self.registry,
            # A pool-executed group must not outlive the HTTP timeout
            # that is waiting on it: a hung worker is deadline-killed
            # and the attempt retried instead of leaking the slot.
            pool_task_timeout=(
                pool_task_timeout
                if pool_task_timeout is not None
                else request_timeout
            ),
        )
        self.draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the pipeline.

        With ``pool_workers > 0`` the execution substrate is a private
        :class:`WorkerPool` of warm processes, pre-spawned here so the
        first request never pays a worker start; otherwise a GIL-bound
        thread executor (the single-core-adequate default).
        """
        if self.recorder is not None:
            enable_tracing(self.recorder)
        if self.chaos is not None:
            # Installed before the pool spawns so workers inherit the
            # env export and salt their own scoped streams.
            install_plan(self.chaos)
            self._installed_chaos = True
        if self.pool_workers > 0:
            self._pool = WorkerPool(
                self.pool_workers, registry=self.registry
            )
            self._pool.ensure_workers(self.pool_workers)
            self.coalescer.pool = self._pool
        else:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.executor_workers,
                thread_name_prefix="repro-service",
            )
            self.coalescer._executor = self._executor
            self.coalescer._owns_executor = False
        await self.coalescer.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self, drain_timeout: float = 10.0) -> bool:
        """Graceful stop: refuse new work, drain, tear down.

        Returns whether the pipeline drained fully within the timeout.
        The executor is shut down with ``cancel_futures=True`` so a
        task that outlived the drain deadline (hung or just slow)
        cannot stall SIGTERM shutdown by holding queued work.
        """
        drain_started = asyncio.get_event_loop().time()
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        drained = await self.coalescer.drain(drain_timeout)
        await self.coalescer.stop()
        # Idle keep-alive connections are parked in readline(); cancel
        # them so the loop can close without orphaned handler tasks.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._pool is not None:
            # The drain already waited for in-flight groups; anything
            # left is abandoned work the pool fails fast.
            self._pool.shutdown(wait=False)
            self._pool = None
        if self.registry is not None:
            self.registry.observe(
                "service_drain_seconds",
                asyncio.get_event_loop().time() - drain_started,
            )
        if self._installed_chaos:
            uninstall_plan()
            self._installed_chaos = False
        if self.recorder is not None:
            disable_tracing()
        return drained

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, extra = await self._route(
                    method, path, body, headers
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                if body == b"__TOO_LARGE__":
                    # The oversize body was never read off the socket;
                    # the connection cannot be reused after the 413.
                    keep_alive = False
                await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        except asyncio.CancelledError:
            pass  # shutdown cancelled an idle keep-alive connection
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request, or ``None`` on clean EOF."""
        try:
            # readline() surfaces an over-limit line as ValueError, not
            # LimitOverrunError — treat either as a malformed request.
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError, ValueError):
            return None
        if not request_line:
            return None
        try:
            method, path, _version = request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, asyncio.LimitOverrunError, ValueError):
                return None
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return method, path, headers, b"__TOO_LARGE__"
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        extra_headers: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout",
        }.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}"]
        headers = {
            "Content-Length": str(len(payload)),
            "Connection": "keep-alive" if keep_alive else "close",
            **extra_headers,
        }
        head.extend(f"{k}: {v}" for k, v in headers.items())
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(payload)
        await writer.drain()

    # -- routing -------------------------------------------------------
    def _request_context(
        self, headers: Optional[Dict[str, str]]
    ) -> TraceContext:
        """The trace context of one ``/v1/color`` request: the client's
        (header) context verbatim when one was sent, else a freshly
        minted root whose sampled flag follows the server's ``--trace``
        period."""
        incoming = TraceContext.from_header(
            (headers or {}).get(TRACE_HEADER.lower())
        )
        if incoming is not None:
            return incoming
        self._trace_counter += 1
        sampled = self._trace_counter % self._trace_every == 0
        return TraceContext.new_root(sampled=sampled)

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        path = path.split("?", 1)[0]
        started = asyncio.get_event_loop().time()
        if self.recorder is not None and path == "/v1/color":
            ctx = self._request_context(headers)
            with use_context(ctx):
                with start_span(
                    "request", route=path, method=method
                ) as rspan:
                    status, payload, extra = await self._dispatch(
                        method, path, body
                    )
                    rspan.set_attribute("status", status)
            # Echo the id on every outcome — 200, 429, 504, 500 alike —
            # so any response is joinable against the flight recorder.
            echo = rspan.context if rspan.context is not None else ctx
            extra = {**extra, TRACE_HEADER: echo.to_header()}
        else:
            status, payload, extra = await self._dispatch(method, path, body)
        if self.registry is not None:
            self.registry.inc(
                "service_requests_total", 1, route=path, status=str(status)
            )
            self.registry.observe(
                "service_request_seconds",
                asyncio.get_event_loop().time() - started,
                route=path,
            )
        return status, payload, extra

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                return self._error(405, "use GET")
            return 200, self._json(self.health()), dict(_JSON_HEADERS)
        if path == "/metrics":
            if method != "GET":
                return self._error(405, "use GET")
            text = render_prometheus(self.registry).encode("utf-8")
            return 200, text, {"Content-Type": "text/plain; version=0.0.4"}
        if path == "/debug/trace":
            if method != "GET":
                return self._error(405, "use GET")
            if self.recorder is None:
                return self._error(
                    404, "tracing is disabled (serve --trace on)"
                )
            text = render_chrome_json(
                self.recorder.snapshot(), metadata=self.recorder.stats()
            )
            return 200, (text + "\n").encode("utf-8"), dict(_JSON_HEADERS)
        if path == "/v1/color":
            if method != "POST":
                return self._error(405, "use POST")
            return await self._handle_color(body)
        return self._error(404, f"no route {path!r}")

    async def _handle_color(
        self, body: bytes
    ) -> Tuple[int, bytes, Dict[str, str]]:
        if body == b"__TOO_LARGE__":
            return self._error(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        if self.draining:
            return self._error(503, "server is draining")
        try:
            decoded = json.loads(body.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return self._error(400, f"invalid JSON body: {exc}")
        try:
            request = ColorRequest.from_json_dict(decoded)
        except RequestValidationError as exc:
            return self._error(400, str(exc), field=exc.field)
        if active_plan() is not None:
            # Dispatch-layer fault sites, probed only on valid requests
            # (injected failures must look like capacity problems, not
            # client errors).  Injected responses carry an ``injected``
            # marker so a chaos report can tell them from genuine ones.
            decision = maybe_fault("service.queue.saturate", self.registry)
            if decision is not None:
                retry_after = (
                    decision.param if decision.param is not None else 0.05
                )
                return (
                    429,
                    self._json(
                        {
                            "error": "injected admission saturation",
                            "retry_after": retry_after,
                            "injected": True,
                        }
                    ),
                    {**_JSON_HEADERS, "Retry-After": str(retry_after)},
                )
            decision = maybe_fault("service.dispatch.error", self.registry)
            if decision is not None:
                return self._error(
                    500,
                    f"injected fault at {decision.site} (probe "
                    f"{decision.index})",
                    injected=True,
                )
            decision = maybe_fault("service.dispatch.latency", self.registry)
            if decision is not None:
                await asyncio.sleep(
                    decision.param if decision.param is not None else 0.05
                )
        try:
            response = await asyncio.wait_for(
                self.coalescer.submit(request), self.request_timeout
            )
        except BackpressureError as exc:
            body_dict: Dict[str, Any] = {
                "error": str(exc), "retry_after": exc.retry_after,
            }
            if self._trace_id():
                body_dict["trace_id"] = self._trace_id()
            return (
                429,
                self._json(body_dict),
                {**_JSON_HEADERS, "Retry-After": str(int(exc.retry_after + 0.5) or 1)},
            )
        except asyncio.TimeoutError:
            # The wall clock ran out before the simulation did: the
            # work item stays admitted, finishes in the background and
            # lands in the cache, so a retry is cheap.  This mirrors
            # TimeExhaustedError's diagnosability contract one level
            # up: say who timed out and what to do next.
            timeout_body: Dict[str, Any] = {
                "error": (
                    f"request {request.request_key} exceeded the "
                    f"{self.request_timeout:.1f}s service timeout; "
                    "the result will be cached for a retry"
                ),
                "request_key": request.request_key,
                "retry_after": self.request_timeout,
            }
            if self._trace_id():
                # Joinable against /debug/trace: the partial spans of
                # the timed-out request carry this id.
                timeout_body["trace_id"] = self._trace_id()
            return 504, self._json(timeout_body), dict(_JSON_HEADERS)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - surfaced as HTTP 500
            return self._error(500, f"{type(exc).__name__}: {exc}")
        return 200, self._json(response.to_dict()), dict(_JSON_HEADERS)

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _trace_id() -> str:
        ctx = current_context()
        return ctx.trace_id if ctx is not None else ""

    def health(self) -> Dict[str, Any]:
        payload = {
            "status": "draining" if self.draining else "ok",
            "queue_depth": self.coalescer.depth,
            "queue_limit": self.coalescer.queue_limit,
            "cache": self.coalescer.cache.stats(),
            "inflight_keys": len(self.coalescer.flight),
        }
        if self._pool is not None:
            payload["pool"] = self._pool.stats()
        if self.recorder is not None:
            payload["trace"] = self.recorder.stats()
        return payload

    @staticmethod
    def _json(payload: Dict[str, Any]) -> bytes:
        return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")

    def _error(
        self, status: int, message: str, **extra: Any
    ) -> Tuple[int, bytes, Dict[str, str]]:
        body: Dict[str, Any] = {"error": message}
        body.update({k: v for k, v in extra.items() if v})
        if self._trace_id():
            body.setdefault("trace_id", self._trace_id())
        return status, self._json(body), dict(_JSON_HEADERS)


class ServerThread:
    """Run a :class:`ColorServer` on a background event-loop thread.

    The in-process harness tests and benchmarks use::

        with ServerThread(queue_limit=8) as server:
            client = ServiceClient(port=server.port)
            ...

    ``__enter__`` returns once the socket is bound (``server.port`` is
    real); ``__exit__`` performs the same graceful drain as SIGTERM.
    """

    def __init__(self, drain_timeout: float = 10.0, **server_kwargs: Any):
        self.server = ColorServer(**server_kwargs)
        self.drain_timeout = drain_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def registry(self) -> MetricsRegistry:
        return self.server.registry

    def __enter__(self) -> "ColorServer":
        import threading

        started = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            loop.run_until_complete(self.server.start())
            started.set()
            loop.run_forever()
            # Drain runs on the loop via run_coroutine_threadsafe from
            # __exit__; by the time run_forever returns, teardown is done.
            loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=30.0):
            raise RuntimeError("service event loop failed to start")
        return self.server

    def __exit__(self, *exc_info: Any) -> None:
        loop = self._loop
        if loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(self.drain_timeout), loop
        )
        future.result(timeout=self.drain_timeout + 30.0)
        loop.call_soon_threadsafe(loop.stop)
        self._thread.join(timeout=30.0)


def serve(
    host: str = "127.0.0.1",
    port: int = 8731,
    *,
    cache_size: int = 1024,
    queue_limit: int = 64,
    max_batch: int = 32,
    coalesce_window: float = 0.002,
    request_timeout: float = 30.0,
    executor_workers: int = 2,
    pool_workers: int = 0,
    drain_timeout: float = 10.0,
    quiet: bool = False,
    trace: str = "off",
    trace_buffer: int = 4096,
    chaos_plan: Optional[str] = None,
) -> int:
    """Blocking entry point of ``repro-color serve``.

    Runs until SIGTERM/SIGINT, then drains gracefully.  Exit status 0
    on a clean drain, 1 when the drain timed out with work still in
    flight.  ``pool_workers > 0`` serves executions from that many
    warm worker processes instead of the in-process thread executor.
    ``trace`` enables end-to-end tracing (``on`` or ``sample=K``) into
    a ``trace_buffer``-span flight recorder served at ``/debug/trace``.
    ``chaos_plan`` (a :class:`FaultPlan` JSON file) arms seeded fault
    injection for the server's lifetime — see ``docs/CHAOS.md``.
    """
    plan = FaultPlan.from_file(chaos_plan) if chaos_plan else None
    server = ColorServer(
        host=host,
        port=port,
        cache_size=cache_size,
        queue_limit=queue_limit,
        max_batch=max_batch,
        coalesce_window=coalesce_window,
        request_timeout=request_timeout,
        executor_workers=executor_workers,
        pool_workers=pool_workers,
        trace=trace,
        trace_buffer=trace_buffer,
        chaos=plan,
    )
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX
            signal.signal(signum, lambda *_: stop.set())

    async def main() -> bool:
        # Engine metrics from executor threads land in the same
        # registry the scrape endpoint renders.
        with collecting(server.registry):
            await server.start()
            if not quiet:
                print(
                    f"repro-color serve: listening on "
                    f"http://{server.host}:{server.port} "
                    f"(queue_limit={queue_limit}, cache_size={cache_size}, "
                    f"max_batch={max_batch}, pool_workers={pool_workers}, "
                    f"trace={trace}, "
                    f"chaos={plan.plan_hash if plan else 'off'})",
                    file=sys.stderr,
                    flush=True,
                )
            await stop.wait()
            if not quiet:
                print(
                    "repro-color serve: signal received, draining …",
                    file=sys.stderr,
                    flush=True,
                )
            return await server.shutdown(drain_timeout)

    try:
        drained = loop.run_until_complete(main())
    finally:
        loop.close()
    if not quiet:
        print(
            "repro-color serve: shutdown "
            + ("clean" if drained else "timed out with work in flight"),
            file=sys.stderr,
            flush=True,
        )
    return 0 if drained else 1
