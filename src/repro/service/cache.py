"""Result cache of the service: LRU storage plus single-flight dedup.

Executions are fully deterministic functions of their request
configuration — (algorithm, topology, n, inputs, schedule, seed,
max_time) — so results are perfectly cacheable by the request's
content hash, forever: there is no TTL because there is nothing to go
stale.  Two layers cooperate:

* :class:`LRUCache` — bounded mapping ``request_key → ColorResponse``
  with least-recently-*used* eviction and hit/miss accounting.  Only
  touched from the event loop, so it needs no locking.
* :class:`SingleFlight` — at most one computation per key may be in
  flight: the first requester (the *leader*) computes, every
  concurrent duplicate (*followers*) awaits the leader's future.  The
  leader's result lands in the cache exactly once; followers never
  enter the admission queue at all, so a thundering herd of identical
  requests costs one execution and zero extra queue slots.

Waiters must guard the shared future with :func:`asyncio.shield` —
one client timing out and cancelling must not cancel the computation
for everyone else; :meth:`SingleFlight.wait` does this internally.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

__all__ = ["LRUCache", "SingleFlight"]


class LRUCache:
    """Bounded ``key → value`` mapping with LRU eviction.

    ``capacity=0`` disables storage entirely (every ``get`` misses,
    every ``put`` is dropped) — the switch the coalescing benchmark
    leg uses to measure batching without cache interference.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str) -> Optional[Any]:
        """The cached value, freshly promoted to most-recently-used —
        or ``None``, counting a miss."""
        try:
            self._data.move_to_end(key)
        except KeyError:
            self.misses += 1
            return None
        self.hits += 1
        return self._data[key]

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry on
        overflow."""
        if self.capacity == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key: str) -> bool:
        """Drop ``key`` if present (corrupt entry, forced refresh);
        returns whether something was removed.  Not counted as an
        eviction — evictions measure capacity pressure."""
        return self._data.pop(key, None) is not None

    def keys(self) -> Tuple[str, ...]:
        """Keys from least- to most-recently-used (exposed for tests)."""
        return tuple(self._data)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._data),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class SingleFlight:
    """Per-key computation dedup over asyncio futures.

    Protocol: call :meth:`claim` with the key.  The first caller gets
    ``(future, True)`` and *must* eventually :meth:`resolve` or
    :meth:`reject` the key (a ``finally`` duty); concurrent callers
    get ``(future, False)`` and just await it via :meth:`wait`.
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}
        self.joins = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, key: str) -> bool:
        return key in self._inflight

    def claim(self, key: str) -> Tuple[asyncio.Future, bool]:
        """The in-flight future for ``key`` and whether the caller is
        the leader (created it just now)."""
        future = self._inflight.get(key)
        if future is not None:
            self.joins += 1
            return future, False
        future = asyncio.get_event_loop().create_future()
        self._inflight[key] = future
        return future, True

    async def wait(self, future: asyncio.Future) -> Any:
        """Await a claimed future, shielded from the caller's timeout:
        cancelling one waiter must not abort the shared computation."""
        return await asyncio.shield(future)

    def resolve(self, key: str, value: Any) -> None:
        """Deliver ``value`` to every waiter of ``key`` and retire it."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(value)

    def reject(self, key: str, exc: BaseException) -> None:
        """Fail every waiter of ``key`` with ``exc`` and retire it."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(exc)
            # A rejected key may have no waiters left (e.g. the leader
            # sheds and raises its own copy of ``exc``); mark the
            # exception retrieved so the loop does not log it.
            future.exception()
