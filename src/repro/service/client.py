"""Blocking HTTP client for the simulation service (stdlib only).

A thin, dependency-free wrapper over :mod:`http.client` with
keep-alive and one transparent reconnect (servers may close idle
connections between calls).  Used by the load generator, the CI smoke
job and the test suite; application code gets structured
:class:`ServiceReply` objects instead of raw sockets.

Timeouts are **never** silently retried: after a socket timeout the
server may still be processing the original request, so a transparent
re-send would duplicate work and hide the latency.  The connection is
dropped (it is mid-response, unusable) and
:class:`~repro.errors.ServiceTimeout` raised.  The one transparent
reconnect covers only connection-*setup*-level failures — a
server-closed keep-alive socket — where no request can have been
executing.

Opt-in resilience (the chaos layer's consuming side): construct with a
:class:`~repro.chaos.resilience.BackoffPolicy` and :meth:`color`
retries retryable outcomes (429, 5xx, transport errors) under capped
seeded-jitter exponential backoff that honors ``Retry-After``, bounded
by an optional per-call wall-clock ``deadline``; add a
:class:`~repro.chaos.resilience.CircuitBreaker` and repeated failures
fail fast with a synthetic 503 until a half-open probe succeeds.  All
of it is deterministic under the policy's seed, so tests assert exact
backoff schedules.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Union

from repro.chaos.resilience import BackoffPolicy, CircuitBreaker
from repro.errors import CircuitOpenError, ServiceError, ServiceTimeout
from repro.obs.trace import TRACE_HEADER
from repro.service.schema import ColorRequest

__all__ = ["ServiceReply", "ServiceClient"]


@dataclass
class ServiceReply:
    """One HTTP exchange: status code, decoded JSON body, headers.

    ``attempts`` counts the sends behind this reply — 1 without
    resilience, possibly more when a retry policy was active.
    """

    status: int
    body: Any
    headers: Dict[str, str]
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after(self) -> Optional[float]:
        """The server's backoff hint on 429/503 replies, if any."""
        value = self.headers.get("retry-after")
        if value is None and isinstance(self.body, dict):
            value = self.body.get("retry_after")
        try:
            return float(value) if value is not None else None
        except (TypeError, ValueError):
            return None

    @property
    def trace_id(self) -> str:
        """The server-side trace id of this exchange, when the server
        ran with tracing on — joinable against ``/debug/trace``.
        Empty string otherwise."""
        header = self.headers.get(TRACE_HEADER.lower(), "")
        if header:
            return header.split("-", 1)[0]
        if isinstance(self.body, dict):
            return str(self.body.get("trace_id", ""))
        return ""


class ServiceClient:
    """Keep-alive client bound to one server address.

    Not thread-safe (one underlying connection): give each load-
    generator worker its own instance.

    Parameters
    ----------
    timeout:
        Socket timeout per exchange; expiry raises
        :class:`ServiceTimeout` (never a silent re-send).
    resilience:
        Opt-in retry policy for :meth:`color`; ``None`` (default)
        keeps the historical one-shot behavior.
    breaker:
        Optional circuit breaker consulted by :meth:`color` when
        ``resilience`` is set; open-circuit calls return a synthetic
        503 reply without touching the network.
    deadline:
        Wall-clock budget in seconds for one :meth:`color` call
        including all retries and backoff sleeps; ``None`` = only the
        per-exchange socket timeout applies.
    sleeper:
        Injection point for tests — receives each backoff delay.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8731,
        *,
        timeout: float = 60.0,
        resilience: Optional[BackoffPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        deadline: Optional[float] = None,
        sleeper: Callable[[float], None] = time.sleep,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.resilience = resilience
        self.breaker = breaker
        self.deadline = deadline
        self._sleep = sleeper
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> ServiceReply:
        headers = {"Content-Type": "application/json"} if body else {}
        if extra_headers:
            headers.update(extra_headers)
        started = time.monotonic()
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                raw = conn.getresponse()
                payload = raw.read()
                break
            except socket.timeout as exc:
                # The request may still be executing server-side; the
                # connection is mid-exchange and must not be reused,
                # and re-sending would silently duplicate the work.
                # Drop the socket and surface the timeout explicitly.
                self.close()
                raise ServiceTimeout(
                    f"request to {self.host}:{self.port}{path} timed out "
                    f"after {self.timeout:g}s",
                    elapsed=time.monotonic() - started,
                ) from exc
            except (
                ConnectionError,
                http.client.HTTPException,
                OSError,
            ) as exc:
                # One silent reconnect covers a server-closed keep-alive
                # socket (nothing was executing); a second failure is a
                # real outage.  The half-broken connection is rebuilt
                # either way — never reused.
                self.close()
                if attempt:
                    raise ServiceError(
                        f"service at {self.host}:{self.port} unreachable: {exc}"
                    ) from exc
        content_type = raw.getheader("Content-Type", "")
        decoded: Any = payload.decode("utf-8", "replace")
        if "json" in content_type:
            try:
                decoded = json.loads(decoded or "null")
            except json.JSONDecodeError:
                pass
        return ServiceReply(
            status=raw.status,
            body=decoded,
            headers={k.lower(): v for k, v in raw.getheaders()},
        )

    # -- API -----------------------------------------------------------
    def color(
        self,
        request: Union[ColorRequest, Dict[str, Any]],
        *,
        trace_header: Optional[str] = None,
    ) -> ServiceReply:
        """POST one coloring request (a :class:`ColorRequest` or a raw
        JSON-shaped dict, sent as-is so tests can probe validation).
        ``trace_header`` sends an ``X-Repro-Trace-Id`` value so the
        server joins this request to a caller-owned trace.

        With a ``resilience`` policy installed, retryable outcomes
        (429, 5xx, transport errors, timeouts) are retried up to the
        policy's ``max_retries`` under its deterministic backoff,
        honoring ``Retry-After`` and the client ``deadline`` budget;
        the returned reply's ``attempts`` records the sends.  Coloring
        requests are deterministic and cached server-side, so a retry
        after a timeout costs at most duplicate work, never divergent
        results.
        """
        if isinstance(request, ColorRequest):
            payload = request.config()
        else:
            payload = dict(request)
        extra = {TRACE_HEADER: trace_header} if trace_header else None
        body = json.dumps(payload).encode("utf-8")
        if self.resilience is None:
            return self._request("POST", "/v1/color", body, extra_headers=extra)
        return self._color_resilient(body, extra)

    def _color_resilient(
        self, body: bytes, extra: Optional[Dict[str, str]]
    ) -> ServiceReply:
        policy = self.resilience
        cutoff = (
            time.monotonic() + self.deadline
            if self.deadline is not None
            else None
        )
        attempts = 0
        reply: Optional[ServiceReply] = None
        last_exc: Optional[ServiceError] = None
        while True:
            if self.breaker is not None:
                try:
                    self.breaker.acquire()
                except CircuitOpenError as exc:
                    return ServiceReply(
                        status=503,
                        body={
                            "error": str(exc),
                            "circuit_open": True,
                            "retry_after": exc.retry_after,
                        },
                        headers={},
                        attempts=attempts + 1,
                    )
            attempts += 1
            try:
                reply = self._request(
                    "POST", "/v1/color", body, extra_headers=extra
                )
                last_exc = None
            except ServiceError as exc:
                reply = None
                last_exc = exc
                if self.breaker is not None:
                    self.breaker.record_failure()
            if reply is not None:
                if self.breaker is not None:
                    # 5xx trips the breaker; everything the server
                    # answered deliberately (2xx–4xx, backpressure
                    # included) proves it alive.
                    if reply.status >= 500:
                        self.breaker.record_failure()
                    else:
                        self.breaker.record_success()
                if reply.status != 429 and reply.status < 500:
                    reply.attempts = attempts
                    return reply
            retries_used = attempts - 1
            if retries_used >= policy.max_retries:
                break
            delay = policy.delay(
                retries_used,
                reply.retry_after if reply is not None else None,
            )
            if cutoff is not None:
                remaining = cutoff - time.monotonic()
                if remaining <= 0:
                    break
                delay = min(delay, remaining)
            if delay > 0:
                self._sleep(delay)
        if reply is None:
            assert last_exc is not None
            raise last_exc
        reply.attempts = attempts
        return reply

    def healthz(self) -> ServiceReply:
        return self._request("GET", "/healthz")

    def debug_trace(self) -> Dict[str, Any]:
        """The flight recorder as Chrome trace-event JSON
        (``GET /debug/trace``); raises when tracing is off."""
        reply = self._request("GET", "/debug/trace")
        if not reply.ok:
            raise ServiceError(f"GET /debug/trace returned {reply.status}")
        return reply.body

    def metrics_text(self) -> str:
        """The Prometheus exposition body of ``GET /metrics``."""
        reply = self._request("GET", "/metrics")
        if not reply.ok:
            raise ServiceError(f"GET /metrics returned {reply.status}")
        return reply.body

    def wait_ready(self, timeout: float = 15.0, interval: float = 0.05) -> bool:
        """Poll ``/healthz`` until the server answers (or time out)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if self.healthz().ok:
                    return True
            except ServiceError:
                pass
            time.sleep(interval)
        return False
