"""Blocking HTTP client for the simulation service (stdlib only).

A thin, dependency-free wrapper over :mod:`http.client` with
keep-alive and one transparent reconnect (servers may close idle
connections between calls).  Used by the load generator, the CI smoke
job and the test suite; application code gets structured
:class:`ServiceReply` objects instead of raw sockets.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.errors import ServiceError
from repro.obs.trace import TRACE_HEADER
from repro.service.schema import ColorRequest

__all__ = ["ServiceReply", "ServiceClient"]


@dataclass
class ServiceReply:
    """One HTTP exchange: status code, decoded JSON body, headers."""

    status: int
    body: Any
    headers: Dict[str, str]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after(self) -> Optional[float]:
        """The server's backoff hint on 429/503 replies, if any."""
        value = self.headers.get("retry-after")
        if value is None and isinstance(self.body, dict):
            value = self.body.get("retry_after")
        try:
            return float(value) if value is not None else None
        except (TypeError, ValueError):
            return None

    @property
    def trace_id(self) -> str:
        """The server-side trace id of this exchange, when the server
        ran with tracing on — joinable against ``/debug/trace``.
        Empty string otherwise."""
        header = self.headers.get(TRACE_HEADER.lower(), "")
        if header:
            return header.split("-", 1)[0]
        if isinstance(self.body, dict):
            return str(self.body.get("trace_id", ""))
        return ""


class ServiceClient:
    """Keep-alive client bound to one server address.

    Not thread-safe (one underlying connection): give each load-
    generator worker its own instance.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8731,
        *,
        timeout: float = 60.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> ServiceReply:
        headers = {"Content-Type": "application/json"} if body else {}
        if extra_headers:
            headers.update(extra_headers)
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                raw = conn.getresponse()
                payload = raw.read()
                break
            except (
                ConnectionError,
                http.client.HTTPException,
                socket.timeout,
                OSError,
            ) as exc:
                # One silent reconnect covers a server-closed keep-alive
                # socket; a second failure is a real outage.
                self.close()
                if attempt:
                    raise ServiceError(
                        f"service at {self.host}:{self.port} unreachable: {exc}"
                    ) from exc
        content_type = raw.getheader("Content-Type", "")
        decoded: Any = payload.decode("utf-8", "replace")
        if "json" in content_type:
            try:
                decoded = json.loads(decoded or "null")
            except json.JSONDecodeError:
                pass
        return ServiceReply(
            status=raw.status,
            body=decoded,
            headers={k.lower(): v for k, v in raw.getheaders()},
        )

    # -- API -----------------------------------------------------------
    def color(
        self,
        request: Union[ColorRequest, Dict[str, Any]],
        *,
        trace_header: Optional[str] = None,
    ) -> ServiceReply:
        """POST one coloring request (a :class:`ColorRequest` or a raw
        JSON-shaped dict, sent as-is so tests can probe validation).
        ``trace_header`` sends an ``X-Repro-Trace-Id`` value so the
        server joins this request to a caller-owned trace."""
        if isinstance(request, ColorRequest):
            payload = request.config()
        else:
            payload = dict(request)
        extra = {TRACE_HEADER: trace_header} if trace_header else None
        return self._request(
            "POST",
            "/v1/color",
            json.dumps(payload).encode("utf-8"),
            extra_headers=extra,
        )

    def healthz(self) -> ServiceReply:
        return self._request("GET", "/healthz")

    def debug_trace(self) -> Dict[str, Any]:
        """The flight recorder as Chrome trace-event JSON
        (``GET /debug/trace``); raises when tracing is off."""
        reply = self._request("GET", "/debug/trace")
        if not reply.ok:
            raise ServiceError(f"GET /debug/trace returned {reply.status}")
        return reply.body

    def metrics_text(self) -> str:
        """The Prometheus exposition body of ``GET /metrics``."""
        reply = self._request("GET", "/metrics")
        if not reply.ok:
            raise ServiceError(f"GET /metrics returned {reply.status}")
        return reply.body

    def wait_ready(self, timeout: float = 15.0, interval: float = 0.05) -> bool:
        """Poll ``/healthz`` until the server answers (or time out)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if self.healthz().ok:
                    return True
            except ServiceError:
                pass
            time.sleep(interval)
        return False
