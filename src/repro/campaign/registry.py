"""Name → factory registries shared by the CLI and the campaign runner.

Campaign tasks must be *descriptions* — plain, hashable, serializable
dicts — so that they can be journaled, hashed for resume, and shipped
to worker processes without pickling live objects.  Workers rebuild the
actual algorithm / topology / inputs / schedule objects from these
registries, which therefore have to resolve identically in every
process.

Two resolution forms are supported everywhere a name is accepted:

* a **registry name** — one of the short names registered below
  (``"fast5"``, ``"bernoulli"``, ``"cycle"``, ``"random"``, …);
* a **dotted path** — ``"package.module:attribute"``, imported on
  demand.  This keeps the subsystem open: an experiment can sweep an
  algorithm that was never registered, as long as workers can import
  it.  (The fault-tolerance test-suite uses this to inject crashing
  and hanging workloads.)
"""

from __future__ import annotations

from importlib import import_module
from typing import Any, Callable, Dict, List, Optional

from repro.core.coloring5 import FiveColoring
from repro.core.coloring6 import SIX_PALETTE, SixColoring
from repro.core.fast_coloring5 import FastFiveColoring
from repro.errors import CampaignError
from repro.extensions.fast_six import FAST_SIX_PALETTE, FastSixColoring
from repro.analysis.inputs import (
    huge_ids,
    monotone_ids,
    random_distinct_ids,
    zigzag_ids,
)
from repro.model.topology import CompleteGraph, Cycle, Path, Topology
from repro.schedulers import (
    AlternatingScheduler,
    BernoulliScheduler,
    BlockRoundRobinScheduler,
    RoundRobinScheduler,
    StaggeredScheduler,
    SynchronousScheduler,
    UniformSubsetScheduler,
)

__all__ = [
    "ALGORITHMS",
    "PALETTES",
    "INPUT_FAMILIES",
    "SCHEDULERS",
    "TOPOLOGIES",
    "resolve_algorithm",
    "resolve_palette",
    "resolve_inputs",
    "resolve_schedule",
    "resolve_topology",
]

#: Algorithm name → zero-argument factory.
ALGORITHMS: Dict[str, Callable[[], Any]] = {
    "alg1": SixColoring,
    "alg2": FiveColoring,
    "fast5": FastFiveColoring,
    "fast6": FastSixColoring,
}

#: Algorithm name → allowed output palette (``None`` = unchecked).
PALETTES: Dict[str, List[Any]] = {
    "alg1": list(SIX_PALETTE),
    "alg2": list(range(5)),
    "fast5": list(range(5)),
    "fast6": list(FAST_SIX_PALETTE),
}

#: Input family name → ``fn(n, seed) -> List[int]``.
INPUT_FAMILIES: Dict[str, Callable[[int, int], List[int]]] = {
    "random": lambda n, seed: random_distinct_ids(n, seed=seed),
    "monotone": lambda n, seed: monotone_ids(n),
    "zigzag": lambda n, seed: zigzag_ids(n),
    "huge": lambda n, seed: huge_ids(n, bits=256, seed=seed),
}

#: Scheduler name → keyword factory.  Every factory tolerates a
#: ``seed`` keyword (stateless schedules simply ignore it) so campaign
#: expansion can inject the run seed uniformly.
SCHEDULERS: Dict[str, Callable[..., Any]] = {
    "sync": lambda seed=0, **kw: SynchronousScheduler(),
    "round-robin": lambda seed=0, offset=0, **kw: RoundRobinScheduler(offset=offset),
    "block-round-robin": lambda seed=0, k=2, **kw: BlockRoundRobinScheduler(k=k),
    "bernoulli": lambda seed=0, p=0.4, **kw: BernoulliScheduler(p=p, seed=seed),
    "subset": lambda seed=0, **kw: UniformSubsetScheduler(seed=seed),
    "staggered": lambda seed=0, stagger=2, **kw: StaggeredScheduler(stagger=stagger),
    "alternating": lambda seed=0, **kw: AlternatingScheduler(),
}

#: Topology name → ``fn(n) -> Topology``.
TOPOLOGIES: Dict[str, Callable[[int], Topology]] = {
    "cycle": Cycle,
    "path": Path,
    "complete": CompleteGraph,
}


def _import_dotted(path: str) -> Any:
    """Import ``package.module:attribute``."""
    module_name, _, attr = path.partition(":")
    if not module_name or not attr:
        raise CampaignError(
            f"dotted path must look like 'pkg.module:attr', got {path!r}"
        )
    try:
        module = import_module(module_name)
    except ImportError as exc:
        raise CampaignError(f"cannot import {module_name!r}: {exc}") from exc
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise CampaignError(f"{module_name!r} has no attribute {attr!r}") from exc


def _resolve(kind: str, registry: Dict[str, Any], name: str) -> Any:
    if ":" in name:
        return _import_dotted(name)
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise CampaignError(
            f"unknown {kind} {name!r} (known: {known}; or use 'pkg.module:attr')"
        ) from None


def resolve_algorithm(name: str) -> Callable[[], Any]:
    """Algorithm factory for ``name`` (registry name or dotted path)."""
    return _resolve("algorithm", ALGORITHMS, name)


def resolve_palette(name: str) -> Optional[List[Any]]:
    """Palette for algorithm ``name``, or ``None`` when unregistered."""
    return PALETTES.get(name)


def resolve_inputs(name: str, n: int, seed: int) -> List[int]:
    """Generate the input vector of family ``name`` for ``(n, seed)``."""
    return _resolve("input family", INPUT_FAMILIES, name)(n, seed)


def resolve_schedule(name: str, seed: int = 0, **params: Any) -> Any:
    """Build a fresh schedule ``name`` with ``seed`` and extra params."""
    return _resolve("scheduler", SCHEDULERS, name)(seed=seed, **params)


def resolve_topology(name: str, n: int) -> Topology:
    """Build topology ``name`` on ``n`` processes."""
    return _resolve("topology", TOPOLOGIES, name)(n)
