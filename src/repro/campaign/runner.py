"""Campaign orchestration: expand → (resume-filter) → execute → aggregate.

:func:`run_campaign` is the one entry point: it expands a
:class:`~repro.campaign.spec.CampaignSpec` into tasks, drops every
task the journal already records (``resume=True``), streams the rest
through a backend, journals each terminal record durably, and folds
all ``ok`` records — old and new — into the repo's standard
:class:`~repro.analysis.ensembles.EnsembleReport` plus a
:class:`CampaignSummary` (throughput, retry/timeout/crash counts,
per-shard latency distributions).

Aggregation is order-insensitive and runs over the *journal*, not the
in-memory stream, so a campaign killed halfway and resumed produces a
final report identical to an uninterrupted run — the property the
fault-tolerance test-suite locks in.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.ensembles import Distribution, EnsembleReport
from repro.campaign.backends import CampaignBackend, SequentialBackend
from repro.campaign.journal import CampaignJournal, TaskRecord
from repro.campaign.spec import CampaignSpec
from repro.campaign.worker import TaskResult
from repro.errors import CampaignError
from repro.obs.metrics import active_registry

__all__ = [
    "CampaignSummary",
    "CampaignOutcome",
    "aggregate_records",
    "run_campaign",
]


@dataclass
class CampaignSummary:
    """Campaign-level operational metrics (the JSON artifact)."""

    backend: str
    workers: int
    total_tasks: int
    skipped: int  # journaled before this invocation (resume)
    executed: int  # ran in this invocation
    ok: int  # terminal ok across the whole campaign
    failed: int  # terminal failed across the whole campaign
    retries: int  # extra attempts beyond the first, all tasks
    timeouts: int
    crashes: int
    wall_time: float
    runs_per_sec: float
    per_shard_latency: Dict[int, Distribution] = field(default_factory=dict)
    metrics: Optional[Dict[str, Any]] = None  # snapshot when collecting

    def to_dict(self) -> Dict[str, Any]:
        def shard_dict(d: Distribution) -> Dict[str, Any]:
            # Per-shard wall-clock is the sum of its task latencies
            # (tasks within a shard run sequentially); throughput is
            # tasks over that wall.
            wall = d.mean * d.count
            return {
                "count": d.count,
                "min": d.minimum,
                "mean": d.mean,
                "p50": d.p50,
                "p95": d.p95,
                "p99": d.p99,
                "max": d.maximum,
                "wall": wall,
                "tasks_per_sec": (d.count / wall) if wall > 0 else 0.0,
            }

        out = {
            "backend": self.backend,
            "workers": self.workers,
            "total_tasks": self.total_tasks,
            "skipped": self.skipped,
            "executed": self.executed,
            "ok": self.ok,
            "failed": self.failed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "wall_time": self.wall_time,
            "runs_per_sec": self.runs_per_sec,
            "per_shard_latency": {
                str(shard): shard_dict(d)
                for shard, d in sorted(self.per_shard_latency.items())
            },
        }
        if self.metrics is not None:
            out["metrics"] = self.metrics
        return out

    def write(self, path: Union[str, Path]) -> Path:
        """Write the summary artifact as JSON and return its path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    def __str__(self) -> str:
        return (
            f"backend={self.backend} workers={self.workers} "
            f"tasks={self.total_tasks} (skipped={self.skipped} "
            f"executed={self.executed}) ok={self.ok} failed={self.failed}\n"
            f"retries={self.retries} timeouts={self.timeouts} "
            f"crashes={self.crashes}\n"
            f"wall={self.wall_time:.2f}s throughput={self.runs_per_sec:.1f} runs/s"
        )


@dataclass
class CampaignOutcome:
    """Everything :func:`run_campaign` produces."""

    report: Optional[EnsembleReport]
    summary: CampaignSummary
    records: List[TaskRecord]

    @property
    def all_ok(self) -> bool:
        """No failed tasks and every run verified clean."""
        return (
            self.summary.failed == 0
            and self.report is not None
            and self.report.all_ok
        )


def aggregate_records(records: Sequence[TaskRecord]) -> Optional[EnsembleReport]:
    """Fold ``ok`` task records into the standard :class:`EnsembleReport`.

    Order-insensitive: distributions sort their samples and counters
    commute, so journal (completion) order never shows through — the
    keystone of resume-equivalence.  Returns ``None`` when no run
    succeeded (there is nothing to summarize).
    """
    maxima: List[float] = []
    means: List[float] = []
    colors: Dict[Any, int] = {}
    histogram: Dict[int, int] = {}
    runs = terminated = proper = palette_ok = 0

    for record in records:
        if record.get("status") != "ok" or not record.get("result"):
            continue
        result = TaskResult.from_dict(record["result"])
        runs += 1
        terminated += result.terminated
        proper += result.proper
        palette_ok += result.palette_ok
        maxima.append(result.max_activation)
        means.append(result.mean_activation)
        for color, count in result.colors:
            colors[color] = colors.get(color, 0) + count
        for activations, count in result.activation_histogram:
            histogram[activations] = histogram.get(activations, 0) + count

    if runs == 0:
        return None
    return EnsembleReport(
        runs=runs,
        terminated_runs=terminated,
        proper_runs=proper,
        palette_ok_runs=palette_ok,
        max_activations=Distribution.of(maxima),
        mean_activations=Distribution.of(means),
        colors_used={c: colors[c] for c in sorted(colors, key=repr)},
        activation_histogram=dict(sorted(histogram.items())),
    )


def _shard_latencies(records: Sequence[TaskRecord]) -> Dict[int, Distribution]:
    by_shard: Dict[int, List[float]] = {}
    for record in records:
        task = record.get("task") or {}
        by_shard.setdefault(int(task.get("shard", 0)), []).append(
            float(record.get("elapsed", 0.0))
        )
    return {s: Distribution.of(v) for s, v in sorted(by_shard.items())}


def run_campaign(
    spec: CampaignSpec,
    *,
    backend: Optional[CampaignBackend] = None,
    journal_path: Optional[Union[str, Path]] = None,
    resume: bool = False,
    task_timeout: float = 60.0,
    max_retries: int = 2,
    stop_after: Optional[int] = None,
    on_record: Optional[Callable[[TaskRecord], None]] = None,
) -> CampaignOutcome:
    """Execute (the unfinished part of) a campaign and aggregate it.

    Parameters
    ----------
    spec:
        The declarative grid to run.
    backend:
        Execution backend; defaults to :class:`SequentialBackend`.
    journal_path:
        JSONL journal location.  Without a journal the campaign still
        runs (records kept in memory) but cannot be resumed.
    resume:
        Skip tasks the journal already records as terminal.  Requires
        ``journal_path``; safe when the journal does not exist yet.
    task_timeout / max_retries:
        Fault-tolerance envelope, enforced by the backend.
    stop_after:
        Execute at most this many tasks in this invocation, then stop
        (checkpointing support; the journal keeps the campaign
        resumable).  ``None`` runs everything.
    on_record:
        Optional streaming hook invoked after each terminal record is
        journaled (progress bars, live dashboards, test hooks).
    """
    if resume and journal_path is None:
        raise CampaignError("resume=True requires a journal_path")

    tasks = spec.expand()
    spec_hash = spec.spec_hash

    journal: Optional[CampaignJournal] = None
    prior_records: List[TaskRecord] = []
    done_hashes = set()
    if journal_path is not None:
        journal = CampaignJournal(journal_path)
        if resume:
            done_hashes = journal.resume(spec_hash)
            prior_records = [
                r for r in journal.records() if r["hash"] in done_hashes
            ]
        else:
            journal.start(spec.to_dict(), spec_hash)

    todo = [t for t in tasks if t.task_hash not in done_hashes]
    if stop_after is not None:
        todo = todo[: max(0, stop_after)]

    new_records: List[TaskRecord] = []
    registry = active_registry()

    def sink(record: TaskRecord) -> None:
        if journal is not None:
            journal.append(record)
        new_records.append(record)
        if registry is not None:
            status = str(record.get("status", "unknown"))
            registry.inc("campaign_tasks_total", 1, status=status)
            registry.observe(
                "campaign_task_seconds", float(record.get("elapsed", 0.0))
            )
            registry.inc(
                "campaign_retries_total",
                max(0, int(record.get("attempts", 1)) - 1),
            )
            registry.inc(
                "campaign_timeouts_total", int(record.get("timeouts", 0))
            )
            registry.inc(
                "campaign_crashes_total", int(record.get("crashes", 0))
            )
        if on_record is not None:
            on_record(record)

    backend = backend or SequentialBackend()
    started = time.perf_counter()
    try:
        backend.execute(
            todo,
            task_timeout=task_timeout,
            max_retries=max_retries,
            on_record=sink,
        )
    finally:
        wall = time.perf_counter() - started
        if journal is not None:
            journal.close()

    all_records = prior_records + new_records
    report = aggregate_records(all_records)

    ok = sum(1 for r in all_records if r.get("status") == "ok")
    failed = sum(1 for r in all_records if r.get("status") == "failed")
    retries = sum(
        max(0, int(r.get("attempts", 1)) - 1) for r in all_records
    )
    summary = CampaignSummary(
        backend=backend.name,
        workers=backend.workers,
        total_tasks=len(tasks),
        skipped=len(done_hashes),
        executed=len(new_records),
        ok=ok,
        failed=failed,
        retries=retries,
        timeouts=sum(int(r.get("timeouts", 0)) for r in all_records),
        crashes=sum(int(r.get("crashes", 0)) for r in all_records),
        wall_time=wall,
        runs_per_sec=(len(new_records) / wall) if wall > 0 else 0.0,
        per_shard_latency=_shard_latencies(all_records),
    )
    if registry is not None:
        registry.set_gauge("campaign_runs_per_sec", summary.runs_per_sec)
        summary.metrics = registry.snapshot()
    return CampaignOutcome(report=report, summary=summary, records=all_records)
