"""Task execution: the pure function a campaign worker runs per task.

:func:`execute_task` maps a task *description* (a plain dict, see
:class:`repro.campaign.spec.TaskSpec`) to a :class:`TaskResult` — the
per-run measurements the aggregator needs, in a JSON-serializable
shape so results survive the journal round-trip byte-identically.

This module is imported inside worker *processes*; it must stay
importable without side effects and must not capture any parent-
process state beyond the registries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.analysis.verify import verify_execution
from repro.campaign.registry import (
    resolve_algorithm,
    resolve_inputs,
    resolve_palette,
    resolve_schedule,
    resolve_topology,
)
from repro.campaign.spec import TaskSpec
from repro.model.execution import run_execution
from repro.obs.trace import start_span

__all__ = ["TaskResult", "execute_task", "task_result_from_execution"]


def _freeze_color(color: Any) -> Any:
    """Make a journal-round-tripped color hashable again.

    JSON turns tuple colors (e.g. Algorithm 1's triangular palette)
    into lists; aggregation needs them as dict keys.
    """
    if isinstance(color, list):
        return tuple(_freeze_color(c) for c in color)
    return color


@dataclass
class TaskResult:
    """Everything the campaign aggregator needs from one finished run."""

    task_hash: str
    terminated: bool
    terminated_count: int
    proper: bool
    palette_ok: bool
    max_activation: float
    mean_activation: float
    round_complexity: int
    final_time: int
    colors: List[Tuple[Any, int]]
    activation_histogram: List[Tuple[int, int]]
    elapsed: float

    @property
    def ok(self) -> bool:
        """Whether the run satisfied all three verified guarantees."""
        return self.terminated and self.proper and self.palette_ok

    def to_dict(self) -> Dict[str, Any]:
        return {
            "task_hash": self.task_hash,
            "terminated": self.terminated,
            "terminated_count": self.terminated_count,
            "proper": self.proper,
            "palette_ok": self.palette_ok,
            "max_activation": self.max_activation,
            "mean_activation": self.mean_activation,
            "round_complexity": self.round_complexity,
            "final_time": self.final_time,
            "colors": [[c, k] for c, k in self.colors],
            "activation_histogram": [[a, k] for a, k in self.activation_histogram],
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TaskResult":
        return cls(
            task_hash=d["task_hash"],
            terminated=bool(d["terminated"]),
            terminated_count=int(d["terminated_count"]),
            proper=bool(d["proper"]),
            palette_ok=bool(d["palette_ok"]),
            max_activation=float(d["max_activation"]),
            mean_activation=float(d["mean_activation"]),
            round_complexity=int(d["round_complexity"]),
            final_time=int(d["final_time"]),
            colors=[(_freeze_color(c), int(k)) for c, k in d["colors"]],
            activation_histogram=[
                (int(a), int(k)) for a, k in d["activation_histogram"]
            ],
            elapsed=float(d["elapsed"]),
        )


def task_result_from_execution(
    spec: TaskSpec,
    topology: Any,
    result: Any,
    palette: Any,
    elapsed: float,
) -> TaskResult:
    """Verify one finished execution and distill it into a TaskResult.

    Shared by :func:`execute_task` (one run at a time) and the batch
    backend (one lockstep run covering many tasks): both paths must
    produce byte-identical result rows for the same execution, which
    is what keeps batched and per-run journals interchangeable.
    """
    verdict = verify_execution(topology, result, palette=palette)

    counts = list(result.activations.values())
    colors: Dict[Any, int] = {}
    for color in result.outputs.values():
        colors[color] = colors.get(color, 0) + 1
    histogram: Dict[int, int] = {}
    for count in counts:
        histogram[count] = histogram.get(count, 0) + 1

    return TaskResult(
        task_hash=spec.task_hash,
        terminated=result.all_terminated,
        terminated_count=len(result.outputs),
        proper=verdict.proper,
        palette_ok=verdict.palette_ok,
        max_activation=float(max(counts)) if counts else 0.0,
        mean_activation=(sum(counts) / len(counts)) if counts else 0.0,
        round_complexity=result.round_complexity,
        final_time=result.final_time,
        colors=sorted(colors.items(), key=lambda kv: repr(kv[0])),
        activation_histogram=sorted(histogram.items()),
        elapsed=elapsed,
    )


def execute_task(task: Mapping[str, Any]) -> TaskResult:
    """Run one task description end to end and measure it.

    Deterministic up to ``elapsed``: the same description always
    produces the same execution and verification outcome, which is
    what makes journal-based resume sound.
    """
    spec = TaskSpec.from_dict(task)
    started = time.perf_counter()

    with start_span(
        "campaign.execute",
        task_hash=spec.task_hash,
        algorithm=spec.algorithm,
        engine=spec.engine,
    ):
        algorithm = resolve_algorithm(spec.algorithm)()
        topology = resolve_topology(spec.topology, spec.n)
        inputs = resolve_inputs(spec.inputs, spec.n, spec.seed)
        schedule = resolve_schedule(
            spec.schedule, seed=spec.seed, **dict(spec.schedule_params)
        )
        palette = resolve_palette(spec.algorithm)

        result = run_execution(
            algorithm, topology, inputs, schedule,
            max_time=spec.max_time, engine=spec.engine,
        )
    return task_result_from_execution(
        spec, topology, result, palette,
        elapsed=time.perf_counter() - started,
    )
