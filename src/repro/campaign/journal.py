"""Append-only JSONL journal: the campaign's crash-recovery log.

Line 1 is a header identifying the campaign spec (by content hash);
every subsequent line is one terminal task record::

    {"hash": ..., "status": "ok"|"failed", "task": {...},
     "result": {...}|null, "error": null|str, "attempts": n,
     "elapsed": secs, "worker": id|null, "timeouts": n, "crashes": n}

Records are flushed and fsync'd per append, so a campaign killed at
any point (including SIGKILL) loses at most the line being written;
a truncated trailing line is tolerated and ignored on load.  Resume
(:meth:`completed_hashes`) replays the journal and skips every task
whose hash already has a terminal record — re-running a finished
campaign is a no-op, and re-running a half-finished one executes
exactly the missing half.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Union

from repro.errors import CampaignError
from repro.obs.metrics import active_registry
from repro.obs.spans import span

__all__ = ["TaskRecord", "CampaignJournal"]

#: Statuses that mark a task as done (never re-executed on resume).
TERMINAL_STATUSES = ("ok", "failed")

TaskRecord = Dict[str, Any]


class CampaignJournal:
    """One campaign's JSONL journal on disk."""

    VERSION = 1

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fh = None

    # -- writing -------------------------------------------------------
    def start(self, spec_dict: Dict[str, Any], spec_hash: str) -> None:
        """Create/truncate the journal and write the campaign header."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._write_line(
            {
                "journal_version": self.VERSION,
                "spec_hash": spec_hash,
                "campaign": spec_dict,
            }
        )

    def resume(self, spec_hash: str) -> Set[str]:
        """Open for append, verify compatibility, return finished hashes.

        A missing or empty journal behaves like :meth:`start` would —
        the set is empty and a fresh header is written — so ``--resume``
        is always safe to pass.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            self.start({}, spec_hash)
            return set()
        header, records = self._load()
        if header.get("spec_hash") != spec_hash:
            raise CampaignError(
                f"journal {self.path} belongs to campaign "
                f"{header.get('spec_hash')!r}, not {spec_hash!r} — "
                "refusing to mix campaigns (use a fresh --journal path)"
            )
        self._fh = open(self.path, "a", encoding="utf-8")
        return {
            r["hash"] for r in records if r.get("status") in TERMINAL_STATUSES
        }

    def append(self, record: TaskRecord) -> None:
        """Durably append one terminal task record."""
        if self._fh is None:
            raise CampaignError("journal not started (call start() or resume())")
        self._write_line(record)

    def _write_line(self, payload: Dict[str, Any]) -> None:
        from repro.chaos.injector import active_plan, maybe_fault

        line = json.dumps(payload, sort_keys=True) + "\n"
        if active_plan() is not None:
            # The chaos layer's torn-write sites: die just before the
            # append (record fully lost) or mid-append after a durable
            # *partial* line (the torn-trailing-record case resume must
            # tolerate).  os._exit skips every atexit/flush path — as
            # close to SIGKILL as a process can do to itself.
            if maybe_fault("campaign.journal.kill") is not None:
                os._exit(137)
            if maybe_fault("campaign.journal.torn") is not None:
                self._fh.write(line[: max(1, len(line) // 2)])
                self._fh.flush()
                os.fsync(self._fh.fileno())
                os._exit(137)
        with span("campaign_journal_append"):
            self._fh.write(line)
            self._fh.flush()
            os.fsync(self._fh.fileno())
        registry = active_registry()
        if registry is not None:
            registry.inc("campaign_journal_appends_total", 1)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------
    def _iter_lines(self) -> Iterator[Dict[str, Any]]:
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A kill mid-append leaves at most one truncated
                    # trailing line; treat it as never written.
                    continue

    def _load(self):
        header: Dict[str, Any] = {}
        records: List[TaskRecord] = []
        for i, payload in enumerate(self._iter_lines()):
            if i == 0 and "journal_version" in payload:
                header = payload
            else:
                records.append(payload)
        return header, records

    def header(self) -> Dict[str, Any]:
        """The campaign header line (empty dict if none)."""
        header, _ = self._load()
        return header

    def records(self) -> List[TaskRecord]:
        """All readable task records, in journal (completion) order."""
        _, records = self._load()
        return records

    def completed_hashes(self) -> Set[str]:
        """Hashes of tasks with a terminal record."""
        return {
            r["hash"]
            for r in self.records()
            if r.get("status") in TERMINAL_STATUSES
        }
