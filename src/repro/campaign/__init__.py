"""``repro.campaign`` — sharded, resumable experiment-campaign runner.

The paper's guarantees are suprema over schedules, so empirical claims
rest on sweeping large (algorithm × n × input × schedule × seed)
grids.  This subsystem turns such a grid into a fault-tolerant
*campaign*:

* :mod:`repro.campaign.spec` — declarative :class:`CampaignSpec`
  expanded into deterministic, content-hashed :class:`TaskSpec`\\ s;
* :mod:`repro.campaign.registry` — name → factory tables so tasks are
  plain serializable descriptions, rebuilt identically in any process;
* :mod:`repro.campaign.backends` — a sequential in-process backend and
  a supervised ``multiprocessing`` pool with per-task timeouts,
  bounded retries, and worker-crash recovery;
* :mod:`repro.campaign.journal` — durable JSONL journal enabling
  exact resume of killed campaigns (skip by task hash);
* :mod:`repro.campaign.runner` — orchestration plus aggregation into
  the standard :class:`~repro.analysis.ensembles.EnsembleReport` and a
  campaign-level :class:`CampaignSummary` JSON artifact.

CLI: ``repro-color campaign …`` (see ``docs/CAMPAIGN.md``).
"""

from repro.campaign.backends import (
    CampaignBackend,
    PoolBackend,
    SequentialBackend,
    make_backend,
)
from repro.campaign.journal import CampaignJournal
from repro.campaign.registry import (
    ALGORITHMS,
    INPUT_FAMILIES,
    PALETTES,
    SCHEDULERS,
    TOPOLOGIES,
)
from repro.campaign.runner import (
    CampaignOutcome,
    CampaignSummary,
    aggregate_records,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec, ScheduleSpec, TaskSpec
from repro.campaign.worker import TaskResult, execute_task

__all__ = [
    "ALGORITHMS",
    "INPUT_FAMILIES",
    "PALETTES",
    "SCHEDULERS",
    "TOPOLOGIES",
    "CampaignBackend",
    "CampaignJournal",
    "CampaignOutcome",
    "CampaignSpec",
    "CampaignSummary",
    "PoolBackend",
    "ScheduleSpec",
    "SequentialBackend",
    "TaskResult",
    "TaskSpec",
    "aggregate_records",
    "execute_task",
    "make_backend",
    "run_campaign",
]
