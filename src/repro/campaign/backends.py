"""Campaign execution backends: sequential reference and process pool.

Both backends implement one contract — :meth:`CampaignBackend.execute`
takes a list of :class:`~repro.campaign.spec.TaskSpec` and invokes
``on_record`` exactly once per task with a *terminal* record
(``status`` ``"ok"`` or ``"failed"``), in completion order.  The
runner journals and aggregates those records without knowing which
backend produced them.

:class:`SequentialBackend` runs tasks in-process, in grid order.  It
retries raising tasks but cannot enforce wall-clock timeouts or
survive a task that kills the interpreter — it exists for tests,
small grids, and as the semantics reference.

:class:`PoolBackend` is the production path: a supervisor owning N
worker processes.  Each worker has a private task queue; the
supervisor assigns one task at a time to an idle worker, so it always
knows exactly which task every worker holds.  That makes the three
failure modes recoverable without losing or duplicating tasks:

* a task **raises** — the worker reports the error and lives on; the
  supervisor requeues the task (bounded by ``max_retries``);
* a task **hangs** — the supervisor's deadline fires, the worker is
  killed and replaced, the task requeued (counted as a timeout);
* a worker **dies** (segfault, ``os._exit``, OOM-kill) — liveness
  monitoring spots the corpse, respawns a worker, requeues the task
  (counted as a crash).

A task that exhausts ``max_retries`` is recorded as ``"failed"`` with
its last error; the campaign always completes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaign.spec import TaskSpec
from repro.campaign.worker import execute_task
from repro.errors import CampaignError
from repro.obs.metrics import active_registry

__all__ = [
    "CampaignBackend",
    "SequentialBackend",
    "BatchBackend",
    "PoolBackend",
    "make_backend",
]

#: ``on_record`` callback signature: one terminal record per task.
RecordSink = Callable[[Dict[str, Any]], None]


def _record(
    task: TaskSpec,
    status: str,
    *,
    result: Optional[Dict[str, Any]],
    error: Optional[str],
    attempts: int,
    elapsed: float,
    worker: Optional[int],
    timeouts: int = 0,
    crashes: int = 0,
) -> Dict[str, Any]:
    return {
        "hash": task.task_hash,
        "task": task.to_dict(),
        "status": status,
        "result": result,
        "error": error,
        "attempts": attempts,
        "elapsed": elapsed,
        "worker": worker,
        "timeouts": timeouts,
        "crashes": crashes,
    }


class CampaignBackend:
    """Interface: execute tasks, emitting one terminal record each."""

    name = "abstract"
    workers = 1

    def execute(
        self,
        tasks: Sequence[TaskSpec],
        *,
        task_timeout: float = 60.0,
        max_retries: int = 2,
        on_record: RecordSink,
    ) -> None:
        raise NotImplementedError


class SequentialBackend(CampaignBackend):
    """In-process, in-order execution (tests / small grids).

    Honors ``max_retries`` for raising tasks; ``task_timeout`` is not
    enforceable in-process and is ignored (documented limitation).
    """

    name = "sequential"
    workers = 1

    def execute(
        self,
        tasks: Sequence[TaskSpec],
        *,
        task_timeout: float = 60.0,
        max_retries: int = 2,
        on_record: RecordSink,
    ) -> None:
        registry = active_registry()
        for i, task in enumerate(tasks):
            if registry is not None:
                registry.set_gauge(
                    "campaign_queue_depth", len(tasks) - i, backend=self.name
                )
            attempts = 0
            started = time.perf_counter()
            while True:
                attempts += 1
                try:
                    result = execute_task(task.to_dict())
                except Exception as exc:
                    if attempts > max_retries:
                        on_record(
                            _record(
                                task,
                                "failed",
                                result=None,
                                error=f"{type(exc).__name__}: {exc}",
                                attempts=attempts,
                                elapsed=time.perf_counter() - started,
                                worker=None,
                            )
                        )
                        break
                    continue
                on_record(
                    _record(
                        task,
                        "ok",
                        result=result.to_dict(),
                        error=None,
                        attempts=attempts,
                        elapsed=result.elapsed,
                        worker=None,
                    )
                )
                break
        if registry is not None:
            registry.set_gauge("campaign_queue_depth", 0, backend=self.name)


class BatchBackend(CampaignBackend):
    """Batch-aware task packer: compatible tasks run in lockstep.

    Tasks whose engine is ``"batch"`` are grouped by their batched-
    kernel signature — ``(algorithm, topology, n, max_time)``; seeds,
    input families and schedule types are free to differ within a
    group (:func:`repro.model.batch.run_batch` merges heterogeneous
    schedule streams itself).  Each group executes as *one* lockstep
    call; every task still gets its own terminal record with its own
    hash and :class:`~repro.campaign.worker.TaskResult` — bit-identical
    to what per-run execution would journal, which is what keeps
    ``--resume`` sound when a journal holds half of a former group
    (the remainder simply re-packs into a smaller batch).  The group's
    wall time is attributed evenly across its tasks.

    Tasks the packer cannot place — a different engine, no registered
    batched kernel for the configuration, or a group that raised —
    fall back to per-task in-process execution with the sequential
    backend's retry semantics.  Like :class:`SequentialBackend`, this
    backend runs in-process: ``task_timeout`` applies only to the
    fallback path's documented (ignored) extent.
    """

    name = "batch"
    workers = 1

    def execute(
        self,
        tasks: Sequence[TaskSpec],
        *,
        task_timeout: float = 60.0,
        max_retries: int = 2,
        on_record: RecordSink,
    ) -> None:
        from repro.campaign.registry import (
            resolve_algorithm,
            resolve_inputs,
            resolve_palette,
            resolve_schedule,
            resolve_topology,
        )
        from repro.campaign.worker import task_result_from_execution
        from repro.model.batch import run_batch

        registry = active_registry()
        groups: Dict[Any, List[TaskSpec]] = {}
        fallback: List[TaskSpec] = []
        for task in tasks:
            if task.engine == "batch":
                key = (task.algorithm, task.topology, task.n, task.max_time)
                groups.setdefault(key, []).append(task)
            else:
                fallback.append(task)

        done = 0
        total = len(tasks)
        for key, group in groups.items():
            if registry is not None:
                registry.set_gauge(
                    "campaign_queue_depth", total - done, backend=self.name
                )
            algorithm_name, topology_name, n, max_time = key
            started = time.perf_counter()
            try:
                topology = resolve_topology(topology_name, n)
                palette = resolve_palette(algorithm_name)
                results = run_batch(
                    [resolve_algorithm(t.algorithm)() for t in group],
                    topology,
                    [resolve_inputs(t.inputs, t.n, t.seed) for t in group],
                    [
                        resolve_schedule(
                            t.schedule, seed=t.seed, **dict(t.schedule_params)
                        )
                        for t in group
                    ],
                    max_time=max_time,
                )
            except Exception:
                results = None
            if results is None:
                fallback.extend(group)
                continue
            share = (time.perf_counter() - started) / max(1, len(group))
            for task, result in zip(group, results):
                task_result = task_result_from_execution(
                    task, topology, result, palette, elapsed=share
                )
                on_record(
                    _record(
                        task,
                        "ok",
                        result=task_result.to_dict(),
                        error=None,
                        attempts=1,
                        elapsed=share,
                        worker=None,
                    )
                )
                done += 1

        if fallback:
            SequentialBackend().execute(
                fallback,
                task_timeout=task_timeout,
                max_retries=max_retries,
                on_record=on_record,
            )
        if registry is not None:
            registry.set_gauge("campaign_queue_depth", 0, backend=self.name)


def _pool_worker(wid: int, task_q, result_q) -> None:
    """Worker loop: pull a task description, run it, report back.

    Runs in a child process.  Only plain dicts/strings cross the
    queues; all live objects are rebuilt inside :func:`execute_task`
    from the registries.
    """
    while True:
        item = task_q.get()
        if item is None:
            return
        task_hash = item.get("__hash__")
        task = {k: v for k, v in item.items() if k != "__hash__"}
        try:
            result = execute_task(task)
        except Exception as exc:
            result_q.put(
                ("error", wid, task_hash, f"{type(exc).__name__}: {exc}")
            )
        else:
            result_q.put(("ok", wid, task_hash, result.to_dict()))


@dataclass
class _TaskState:
    task: TaskSpec
    attempts: int = 0
    timeouts: int = 0
    crashes: int = 0
    status: Optional[str] = None
    last_error: Optional[str] = None
    assigned_at: float = 0.0


@dataclass
class _Worker:
    process: Any
    task_q: Any
    current: Optional[str] = None  # task hash in flight
    deadline: float = field(default=0.0)


class PoolBackend(CampaignBackend):
    """Supervised ``multiprocessing`` pool with crash/hang recovery."""

    name = "pool"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        mp_context: Optional[str] = None,
        poll_interval: float = 0.05,
    ):
        self.workers = max(1, workers or os.cpu_count() or 1)
        if mp_context is None:
            mp_context = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(mp_context)
        self._poll = poll_interval

    def execute(
        self,
        tasks: Sequence[TaskSpec],
        *,
        task_timeout: float = 60.0,
        max_retries: int = 2,
        on_record: RecordSink,
    ) -> None:
        if not tasks:
            return
        if task_timeout <= 0:
            raise CampaignError(f"task_timeout must be > 0, got {task_timeout}")

        result_q = self._ctx.Queue()
        state: Dict[str, _TaskState] = {}
        ready: deque = deque()
        for task in tasks:
            if task.task_hash in state:
                raise CampaignError(
                    f"duplicate task hash {task.task_hash} in campaign grid"
                )
            state[task.task_hash] = _TaskState(task=task)
            ready.append(task)

        workers: Dict[int, _Worker] = {}
        next_wid = 0
        done = 0
        total = len(tasks)

        def spawn() -> None:
            nonlocal next_wid
            wid = next_wid
            next_wid += 1
            task_q = self._ctx.SimpleQueue()
            process = self._ctx.Process(
                target=_pool_worker, args=(wid, task_q, result_q), daemon=True
            )
            process.start()
            workers[wid] = _Worker(process=process, task_q=task_q)

        def finish(st: _TaskState, status: str, **kw) -> None:
            nonlocal done
            st.status = status
            done += 1
            on_record(
                _record(
                    st.task,
                    status,
                    attempts=st.attempts,
                    timeouts=st.timeouts,
                    crashes=st.crashes,
                    **kw,
                )
            )

        def retry_or_fail(st: _TaskState, error: str, worker: Optional[int]) -> None:
            """After a failed attempt: requeue, or record terminal failure."""
            st.last_error = error
            if st.attempts > max_retries:
                finish(
                    st,
                    "failed",
                    result=None,
                    error=error,
                    elapsed=time.monotonic() - st.assigned_at,
                    worker=worker,
                )
            else:
                ready.append(st.task)

        for _ in range(min(self.workers, total)):
            spawn()

        registry = active_registry()
        try:
            while done < total:
                if registry is not None:
                    registry.set_gauge(
                        "campaign_queue_depth", len(ready), backend=self.name
                    )
                # 1. hand tasks to idle workers (one in flight each, so
                #    the supervisor always knows what a dead worker held)
                if ready:
                    for wid, w in workers.items():
                        if not ready:
                            break
                        if w.current is None and w.process.is_alive():
                            task = ready.popleft()
                            st = state[task.task_hash]
                            st.assigned_at = time.monotonic()
                            payload = task.to_dict()
                            payload["__hash__"] = task.task_hash
                            w.task_q.put(payload)
                            w.current = task.task_hash
                            w.deadline = st.assigned_at + task_timeout

                # 2. drain one result
                try:
                    kind, wid, task_hash, payload = result_q.get(
                        timeout=self._poll
                    )
                except queue_mod.Empty:
                    kind = None
                if kind is not None:
                    w = workers.get(wid)
                    if w is not None and w.current == task_hash:
                        w.current = None
                    st = state.get(task_hash)
                    # Ignore stragglers for tasks already terminal (a
                    # worker can report just as its deadline fires).
                    if st is not None and st.status is None:
                        st.attempts += 1
                        if kind == "ok":
                            finish(
                                st,
                                "ok",
                                result=payload,
                                error=None,
                                elapsed=payload.get(
                                    "elapsed",
                                    time.monotonic() - st.assigned_at,
                                ),
                                worker=wid,
                            )
                        else:
                            retry_or_fail(st, payload, wid)

                now = time.monotonic()

                # 3. deadline enforcement: kill and replace hung workers
                for wid, w in list(workers.items()):
                    if w.current is not None and now > w.deadline:
                        task_hash = w.current
                        w.process.terminate()
                        w.process.join(timeout=5)
                        del workers[wid]
                        st = state[task_hash]
                        if st.status is None:
                            st.attempts += 1
                            st.timeouts += 1
                            retry_or_fail(
                                st, f"timeout after {task_timeout:g}s", wid
                            )
                        if done < total:
                            spawn()

                # 4. liveness: a worker died on its own — recover its task
                for wid, w in list(workers.items()):
                    if not w.process.is_alive():
                        task_hash = w.current
                        w.process.join(timeout=5)
                        exitcode = w.process.exitcode
                        del workers[wid]
                        if task_hash is not None:
                            st = state[task_hash]
                            if st.status is None:
                                st.attempts += 1
                                st.crashes += 1
                                retry_or_fail(
                                    st,
                                    f"worker crashed (exit {exitcode})",
                                    wid,
                                )
                        if done < total:
                            spawn()
        finally:
            for w in workers.values():
                try:
                    w.task_q.put(None)
                except Exception:
                    pass
            deadline = time.monotonic() + 2.0
            for w in workers.values():
                w.process.join(timeout=max(0.0, deadline - time.monotonic()))
                if w.process.is_alive():
                    w.process.terminate()
                    w.process.join(timeout=1)
            result_q.close()
            result_q.join_thread()
            if registry is not None:
                registry.set_gauge(
                    "campaign_queue_depth", len(ready), backend=self.name
                )


def make_backend(
    name: str,
    *,
    workers: Optional[int] = None,
    mp_context: Optional[str] = None,
) -> CampaignBackend:
    """Backend factory used by the CLI (``--backend``)."""
    if name == "sequential":
        return SequentialBackend()
    if name == "batch":
        return BatchBackend()
    if name == "pool":
        return PoolBackend(workers=workers, mp_context=mp_context)
    raise CampaignError(
        f"unknown backend {name!r} (known: sequential, batch, pool)"
    )
