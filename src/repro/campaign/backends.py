"""Campaign execution backends: sequential reference and process pool.

Both backends implement one contract — :meth:`CampaignBackend.execute`
takes a list of :class:`~repro.campaign.spec.TaskSpec` and invokes
``on_record`` exactly once per task with a *terminal* record
(``status`` ``"ok"`` or ``"failed"``), in completion order.  The
runner journals and aggregates those records without knowing which
backend produced them.

:class:`SequentialBackend` runs tasks in-process, in grid order.  It
retries raising tasks but cannot enforce wall-clock timeouts or
survive a task that kills the interpreter — it exists for tests,
small grids, and as the semantics reference.

:class:`PoolBackend` is the production path, built on the shared warm
worker pool (:class:`repro.pool.WorkerPool`).  Each worker has a
private task queue and holds at most one task, so the supervisor
always knows exactly which task every worker holds.  That makes the
three failure modes recoverable without losing or duplicating tasks:

* a task **raises** — the worker reports the error and lives on; the
  supervisor requeues the task (bounded by ``max_retries``);
* a task **hangs** — the supervisor's deadline fires, the worker is
  killed and replaced, the task requeued (counted as a timeout);
* a worker **dies** (segfault, ``os._exit``, OOM-kill) — liveness
  monitoring spots the corpse, respawns a worker, requeues the task
  (counted as a crash).

A task that exhausts ``max_retries`` is recorded as ``"failed"`` with
its last error; the campaign always completes.  The pool persists
across :meth:`~PoolBackend.execute` calls, so sharded campaigns and
``--resume`` reuse the same warm workers instead of respawning.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaign.spec import TaskSpec
from repro.campaign.worker import execute_task
from repro.errors import CampaignError, PoolTaskError
from repro.obs.metrics import active_registry
from repro.obs.trace import (
    active_recorder,
    deterministic_context,
    record_complete,
    use_context,
)

__all__ = [
    "CampaignBackend",
    "SequentialBackend",
    "BatchBackend",
    "PoolBackend",
    "make_backend",
]

#: ``on_record`` callback signature: one terminal record per task.
RecordSink = Callable[[Dict[str, Any]], None]


def _record(
    task: TaskSpec,
    status: str,
    *,
    result: Optional[Dict[str, Any]],
    error: Optional[str],
    attempts: int,
    elapsed: float,
    worker: Optional[int],
    timeouts: int = 0,
    crashes: int = 0,
) -> Dict[str, Any]:
    return {
        "hash": task.task_hash,
        "task": task.to_dict(),
        "status": status,
        "result": result,
        "error": error,
        "attempts": attempts,
        "elapsed": elapsed,
        "worker": worker,
        "timeouts": timeouts,
        "crashes": crashes,
    }


class CampaignBackend:
    """Interface: execute tasks, emitting one terminal record each."""

    name = "abstract"
    workers = 1

    def execute(
        self,
        tasks: Sequence[TaskSpec],
        *,
        task_timeout: float = 60.0,
        max_retries: int = 2,
        on_record: RecordSink,
    ) -> None:
        raise NotImplementedError


class SequentialBackend(CampaignBackend):
    """In-process, in-order execution (tests / small grids).

    Honors ``max_retries`` for raising tasks; ``task_timeout`` is not
    enforceable in-process and is ignored (documented limitation).
    """

    name = "sequential"
    workers = 1

    def execute(
        self,
        tasks: Sequence[TaskSpec],
        *,
        task_timeout: float = 60.0,
        max_retries: int = 2,
        on_record: RecordSink,
    ) -> None:
        registry = active_registry()
        traced = active_recorder() is not None
        for i, task in enumerate(tasks):
            if registry is not None:
                registry.set_gauge(
                    "campaign_queue_depth", len(tasks) - i, backend=self.name
                )
            # Deterministic per-task root span: the same task hash
            # yields the same trace/span ids on every run, so the
            # timelines of a --resume'd campaign join up instead of
            # fragmenting across sessions.
            root = deterministic_context(task.task_hash) if traced else None
            attempts = 0
            status = "ok"
            started = time.perf_counter()
            wall = time.time()
            with use_context(root):
                while True:
                    attempts += 1
                    try:
                        result = execute_task(task.to_dict())
                    except Exception as exc:
                        if attempts > max_retries:
                            status = "failed"
                            on_record(
                                _record(
                                    task,
                                    "failed",
                                    result=None,
                                    error=f"{type(exc).__name__}: {exc}",
                                    attempts=attempts,
                                    elapsed=time.perf_counter() - started,
                                    worker=None,
                                )
                            )
                            break
                        continue
                    on_record(
                        _record(
                            task,
                            "ok",
                            result=result.to_dict(),
                            error=None,
                            attempts=attempts,
                            elapsed=result.elapsed,
                            worker=None,
                        )
                    )
                    break
            if root is not None:
                record_complete(
                    "campaign.task", root, wall,
                    time.perf_counter() - started,
                    task_hash=task.task_hash, status=status,
                    attempts=attempts, backend=self.name,
                )
        if registry is not None:
            registry.set_gauge("campaign_queue_depth", 0, backend=self.name)


class BatchBackend(CampaignBackend):
    """Batch-aware task packer: compatible tasks run in lockstep.

    Tasks whose engine is ``"batch"`` (or ``"auto"``, for which a
    packed grid is the adaptive choice) are grouped by their batched-
    kernel signature — ``(algorithm, topology, n, max_time)``; seeds,
    input families and schedule types are free to differ within a
    group (:func:`repro.model.batch.run_batch` merges heterogeneous
    schedule streams itself).  Each group executes as *one* lockstep
    call; every task still gets its own terminal record with its own
    hash and :class:`~repro.campaign.worker.TaskResult` — bit-identical
    to what per-run execution would journal, which is what keeps
    ``--resume`` sound when a journal holds half of a former group
    (the remainder simply re-packs into a smaller batch).  The group's
    wall time is attributed evenly across its tasks.

    Tasks the packer cannot place — a different engine, no registered
    batched kernel for the configuration, or a group that raised —
    fall back to per-task in-process execution with the sequential
    backend's retry semantics.  Like :class:`SequentialBackend`, this
    backend runs in-process: ``task_timeout`` applies only to the
    fallback path's documented (ignored) extent.
    """

    name = "batch"
    workers = 1

    def execute(
        self,
        tasks: Sequence[TaskSpec],
        *,
        task_timeout: float = 60.0,
        max_retries: int = 2,
        on_record: RecordSink,
    ) -> None:
        from repro.campaign.registry import (
            resolve_algorithm,
            resolve_inputs,
            resolve_palette,
            resolve_schedule,
            resolve_topology,
        )
        from repro.campaign.worker import task_result_from_execution
        from repro.model.batch import run_batch

        registry = active_registry()
        groups: Dict[Any, List[TaskSpec]] = {}
        fallback: List[TaskSpec] = []
        for task in tasks:
            # "auto" packs like "batch": a campaign grid is exactly the
            # replicas-many workload the selection layer routes to the
            # batch engine, and unpackable groups fall back per-task
            # (where run_execution applies per-run adaptive selection).
            if task.engine in ("batch", "auto"):
                key = (task.algorithm, task.topology, task.n, task.max_time)
                groups.setdefault(key, []).append(task)
            else:
                fallback.append(task)

        done = 0
        total = len(tasks)
        for key, group in groups.items():
            if registry is not None:
                registry.set_gauge(
                    "campaign_queue_depth", total - done, backend=self.name
                )
            algorithm_name, topology_name, n, max_time = key
            started = time.perf_counter()
            try:
                topology = resolve_topology(topology_name, n)
                palette = resolve_palette(algorithm_name)
                results = run_batch(
                    [resolve_algorithm(t.algorithm)() for t in group],
                    topology,
                    [resolve_inputs(t.inputs, t.n, t.seed) for t in group],
                    [
                        resolve_schedule(
                            t.schedule, seed=t.seed, **dict(t.schedule_params)
                        )
                        for t in group
                    ],
                    max_time=max_time,
                )
            except Exception:
                results = None
            if results is None:
                fallback.extend(group)
                continue
            share = (time.perf_counter() - started) / max(1, len(group))
            traced = active_recorder() is not None
            for task, result in zip(group, results):
                task_result = task_result_from_execution(
                    task, topology, result, palette, elapsed=share
                )
                if traced:
                    # Each packed task keeps its own deterministic
                    # root; the shared lockstep run is attributed
                    # evenly, mirroring the journal's elapsed split.
                    record_complete(
                        "campaign.task",
                        deterministic_context(task.task_hash),
                        time.time() - share, share,
                        task_hash=task.task_hash, status="ok",
                        attempts=1, backend=self.name,
                        group_size=len(group),
                    )
                on_record(
                    _record(
                        task,
                        "ok",
                        result=task_result.to_dict(),
                        error=None,
                        attempts=1,
                        elapsed=share,
                        worker=None,
                    )
                )
                done += 1

        if fallback:
            SequentialBackend().execute(
                fallback,
                task_timeout=task_timeout,
                max_retries=max_retries,
                on_record=on_record,
            )
        if registry is not None:
            registry.set_gauge("campaign_queue_depth", 0, backend=self.name)


class PoolBackend(CampaignBackend):
    """Campaign execution on the supervised warm worker pool.

    A thin adapter: task specs are submitted to a
    :class:`repro.pool.WorkerPool` (crash/hang supervision, bounded
    retry and warm-worker reuse all live there) and the resulting
    :class:`~repro.pool.PoolOutcome` / :class:`PoolTaskError` are
    translated into the campaign's terminal record vocabulary.  The
    pool is created lazily on the first :meth:`execute` and kept warm
    for subsequent calls (shards, ``--resume``); pass ``pool=`` to
    share one across backends, or call :meth:`close` to reap workers
    eagerly instead of at interpreter exit.
    """

    name = "pool"

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        mp_context: Optional[str] = None,
        poll_interval: float = 0.05,
        pool: Optional[Any] = None,
    ):
        import os

        self.workers = max(1, workers or os.cpu_count() or 1)
        self._mp_context = mp_context
        self._poll = poll_interval
        self._pool = pool
        self._owns_pool = pool is None

    def _ensure_pool(self) -> Any:
        from repro.pool import WorkerPool

        if self._pool is None or self._pool.closed:
            self._pool = WorkerPool(
                self.workers,
                mp_context=self._mp_context,
                poll_interval=self._poll,
            )
            self._owns_pool = True
        return self._pool

    def close(self) -> None:
        """Reap this backend's workers now (idempotent)."""
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown(wait=False)
        self._pool = None

    def execute(
        self,
        tasks: Sequence[TaskSpec],
        *,
        task_timeout: float = 60.0,
        max_retries: int = 2,
        on_record: RecordSink,
    ) -> None:
        import concurrent.futures

        if not tasks:
            return
        if task_timeout <= 0:
            raise CampaignError(f"task_timeout must be > 0, got {task_timeout}")
        seen = set()
        for task in tasks:
            if task.task_hash in seen:
                raise CampaignError(
                    f"duplicate task hash {task.task_hash} in campaign grid"
                )
            seen.add(task.task_hash)

        pool = self._ensure_pool()
        registry = active_registry()
        total = len(tasks)
        done = 0
        if registry is not None:
            registry.set_gauge(
                "campaign_queue_depth", total, backend=self.name
            )
        # Deterministic per-task roots (same ids on every run of the
        # same grid) so pool-worker spans from a --resume'd campaign
        # land in the same timelines as the original run's.
        roots = (
            {task.task_hash: deterministic_context(task.task_hash)
             for task in tasks}
            if active_recorder() is not None
            else {}
        )
        wall_started = time.time()
        perf_started = time.perf_counter()
        futures = {
            pool.submit_task(
                task.to_dict(),
                timeout=task_timeout,
                max_retries=max_retries,
                label=task.task_hash,
                trace=(
                    roots[task.task_hash].to_dict()
                    if task.task_hash in roots
                    else None
                ),
            ): task
            for task in tasks
        }
        for future in concurrent.futures.as_completed(futures):
            task = futures[future]
            try:
                outcome = future.result()
            except PoolTaskError as exc:
                record = _record(
                    task,
                    "failed",
                    result=None,
                    error=str(exc),
                    attempts=exc.attempts,
                    elapsed=exc.elapsed,
                    worker=exc.worker,
                    timeouts=exc.timeouts,
                    crashes=exc.crashes,
                )
            except Exception as exc:  # pool shut down underneath us
                record = _record(
                    task,
                    "failed",
                    result=None,
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=1,
                    elapsed=0.0,
                    worker=None,
                )
            else:
                record = _record(
                    task,
                    "ok",
                    result=outcome.value,
                    error=None,
                    attempts=outcome.attempts,
                    # Prefer the task's own measured run time (what the
                    # journal has always carried) over queue-to-finish.
                    elapsed=outcome.value.get("elapsed", outcome.elapsed),
                    worker=outcome.worker,
                    timeouts=outcome.timeouts,
                    crashes=outcome.crashes,
                )
            done += 1
            if registry is not None:
                registry.set_gauge(
                    "campaign_queue_depth", total - done, backend=self.name
                )
            root = roots.get(task.task_hash)
            if root is not None:
                # Queue-to-finish envelope over the worker-side
                # pool.task span (which rode back with the result).
                record_complete(
                    "campaign.task", root, wall_started,
                    time.perf_counter() - perf_started,
                    task_hash=task.task_hash, status=record["status"],
                    attempts=record["attempts"], backend=self.name,
                )
            on_record(record)


def make_backend(
    name: str,
    *,
    workers: Optional[int] = None,
    mp_context: Optional[str] = None,
) -> CampaignBackend:
    """Backend factory used by the CLI (``--backend``)."""
    if name == "sequential":
        return SequentialBackend()
    if name == "batch":
        return BatchBackend()
    if name == "pool":
        return PoolBackend(workers=workers, mp_context=mp_context)
    raise CampaignError(
        f"unknown backend {name!r} (known: sequential, batch, pool)"
    )
