"""Declarative campaign specifications and their task expansion.

A :class:`CampaignSpec` names a full experiment grid —
(algorithm × topology size × input family × schedule × seed) — using
only registry names and plain values, so the whole spec is JSON-round-
trippable.  :meth:`CampaignSpec.expand` turns it into a deterministic
list of :class:`TaskSpec` descriptions; each task carries a stable
content hash used by the journal to recognize already-completed work
across process restarts (``--resume``).

Determinism contract: expanding the same spec always yields the same
tasks in the same order with the same hashes, on any machine and any
Python ≥ 3.7 (dict ordering is insertion ordering; hashing is SHA-256
over a canonical JSON encoding, never :func:`hash`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import CampaignError
from repro.campaign.registry import (
    ALGORITHMS,
    INPUT_FAMILIES,
    SCHEDULERS,
    TOPOLOGIES,
)

# Re-exported for backward compatibility: the helper moved to
# repro.util.hashing so the service layer derives request keys from the
# exact same canonical encoding (keys must never drift between the two).
from repro.util.hashing import canonical_hash

__all__ = ["ScheduleSpec", "TaskSpec", "CampaignSpec", "canonical_hash"]


@dataclass(frozen=True)
class ScheduleSpec:
    """One scheduler of the grid: registry name plus fixed parameters.

    The per-run seed is *not* part of the spec — expansion injects it —
    so one ``ScheduleSpec("bernoulli", {"p": 0.4})`` crossed with
    ``seeds=range(10)`` yields ten distinct schedules.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, params: Mapping[str, Any] = None) -> "ScheduleSpec":
        items = tuple(sorted((params or {}).items()))
        return cls(name=name, params=items)

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def label(self) -> str:
        if not self.params:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class TaskSpec:
    """One fully-determined run of the campaign grid.

    ``index`` and ``shard`` locate the task inside its grid (stable
    enumeration position and latency-accounting bucket); they are
    *excluded* from the content hash, which identifies only the run
    configuration itself.
    """

    algorithm: str
    topology: str
    n: int
    inputs: str
    schedule: str
    schedule_params: Tuple[Tuple[str, Any], ...]
    seed: int
    max_time: int
    engine: str = "fast"
    index: int = 0
    shard: int = 0

    def config(self) -> Dict[str, Any]:
        """The hash-relevant run configuration as a plain dict.

        The execution engine is part of the configuration (and hence of
        :attr:`task_hash`): although the engines are observably
        identical, a result row should record exactly how it was
        produced, and a resumed journal must not silently mix engines.
        """
        return {
            "algorithm": self.algorithm,
            "topology": self.topology,
            "n": self.n,
            "inputs": self.inputs,
            "schedule": self.schedule,
            "schedule_params": [list(kv) for kv in self.schedule_params],
            "seed": self.seed,
            "max_time": self.max_time,
            "engine": self.engine,
        }

    @property
    def task_hash(self) -> str:
        return canonical_hash(self.config())

    def to_dict(self) -> Dict[str, Any]:
        d = self.config()
        d["index"] = self.index
        d["shard"] = self.shard
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TaskSpec":
        return cls(
            algorithm=d["algorithm"],
            topology=d["topology"],
            n=int(d["n"]),
            inputs=d["inputs"],
            schedule=d["schedule"],
            schedule_params=tuple(
                (k, v) for k, v in (d.get("schedule_params") or [])
            ),
            seed=int(d["seed"]),
            max_time=int(d["max_time"]),
            engine=d.get("engine", "fast"),
            index=int(d.get("index", 0)),
            shard=int(d.get("shard", 0)),
        )

    def label(self) -> str:
        return (
            f"{self.algorithm}/{self.topology}{self.n}/{self.inputs}"
            f"/{self.schedule}/s{self.seed}"
        )


def _known(name: str, registry, kind: str) -> None:
    if ":" not in name and name not in registry:
        known = ", ".join(sorted(registry))
        raise CampaignError(f"unknown {kind} {name!r} (known: {known})")


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative experiment grid.

    The grid is the cartesian product
    ``algorithms × ns × input_families × schedules × seeds`` on one
    topology kind.  ``num_shards`` only buckets tasks for per-shard
    latency accounting; it does not constrain execution order.
    """

    algorithms: Tuple[str, ...]
    ns: Tuple[int, ...]
    input_families: Tuple[str, ...]
    schedules: Tuple[ScheduleSpec, ...]
    seeds: Tuple[int, ...]
    topology: str = "cycle"
    max_time: int = 200_000
    num_shards: int = 8
    #: ``auto`` lets the selection layer (:mod:`repro.model.select`)
    #: pick per task; journals written before adaptive selection landed
    #: rehydrate with their recorded engine (see :meth:`from_dict`).
    engine: str = "auto"

    @classmethod
    def build(
        cls,
        algorithms: Sequence[str],
        ns: Sequence[int],
        input_families: Sequence[str],
        schedules: Sequence[Any],
        seeds: Sequence[int],
        *,
        topology: str = "cycle",
        max_time: int = 200_000,
        num_shards: int = 8,
        engine: str = "auto",
    ) -> "CampaignSpec":
        """Normalizing constructor: accepts lists, schedule names or
        ``(name, params)`` pairs, and validates against the registries."""
        sched_specs = []
        for s in schedules:
            if isinstance(s, ScheduleSpec):
                sched_specs.append(s)
            elif isinstance(s, str):
                sched_specs.append(ScheduleSpec.of(s))
            else:
                name, params = s
                sched_specs.append(ScheduleSpec.of(name, params))
        spec = cls(
            algorithms=tuple(algorithms),
            ns=tuple(int(n) for n in ns),
            input_families=tuple(input_families),
            schedules=tuple(sched_specs),
            seeds=tuple(int(s) for s in seeds),
            topology=topology,
            max_time=int(max_time),
            num_shards=max(1, int(num_shards)),
            engine=engine,
        )
        spec.validate()
        return spec

    def validate(self) -> None:
        """Fail fast on empty axes or unknown registry names."""
        for axis, value in (
            ("algorithms", self.algorithms),
            ("ns", self.ns),
            ("input_families", self.input_families),
            ("schedules", self.schedules),
            ("seeds", self.seeds),
        ):
            if not value:
                raise CampaignError(f"campaign axis {axis!r} is empty")
        for a in self.algorithms:
            _known(a, ALGORITHMS, "algorithm")
        for f in self.input_families:
            _known(f, INPUT_FAMILIES, "input family")
        for s in self.schedules:
            _known(s.name, SCHEDULERS, "scheduler")
        _known(self.topology, TOPOLOGIES, "topology")
        if self.max_time < 1:
            raise CampaignError(f"max_time must be >= 1, got {self.max_time}")
        from repro.model.execution import ENGINES

        if self.engine not in ENGINES:
            raise CampaignError(
                f"unknown engine {self.engine!r} (known: {', '.join(ENGINES)})"
            )

    @property
    def size(self) -> int:
        """Number of tasks the grid expands to."""
        return (
            len(self.algorithms)
            * len(self.ns)
            * len(self.input_families)
            * len(self.schedules)
            * len(self.seeds)
        )

    def expand(self) -> List[TaskSpec]:
        """The deterministic task list of the grid (see module docs)."""
        self.validate()
        tasks: List[TaskSpec] = []
        index = 0
        for algorithm in self.algorithms:
            for n in self.ns:
                for family in self.input_families:
                    for sched in self.schedules:
                        for seed in self.seeds:
                            tasks.append(
                                TaskSpec(
                                    algorithm=algorithm,
                                    topology=self.topology,
                                    n=n,
                                    inputs=family,
                                    schedule=sched.name,
                                    schedule_params=sched.params,
                                    seed=seed,
                                    max_time=self.max_time,
                                    engine=self.engine,
                                    index=index,
                                    shard=index % self.num_shards,
                                )
                            )
                            index += 1
        return tasks

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithms": list(self.algorithms),
            "ns": list(self.ns),
            "input_families": list(self.input_families),
            "schedules": [
                {"name": s.name, "params": [list(kv) for kv in s.params]}
                for s in self.schedules
            ],
            "seeds": list(self.seeds),
            "topology": self.topology,
            "max_time": self.max_time,
            "num_shards": self.num_shards,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "CampaignSpec":
        return cls(
            algorithms=tuple(d["algorithms"]),
            ns=tuple(int(n) for n in d["ns"]),
            input_families=tuple(d["input_families"]),
            schedules=tuple(
                ScheduleSpec(
                    name=s["name"],
                    params=tuple((k, v) for k, v in (s.get("params") or [])),
                )
                for s in d["schedules"]
            ),
            seeds=tuple(int(s) for s in d["seeds"]),
            topology=d.get("topology", "cycle"),
            max_time=int(d.get("max_time", 200_000)),
            num_shards=int(d.get("num_shards", 8)),
            engine=d.get("engine", "fast"),
        )

    @property
    def spec_hash(self) -> str:
        """Content hash of the whole grid (journal compatibility check)."""
        return canonical_hash(self.to_dict())
