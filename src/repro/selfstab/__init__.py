"""Self-stabilization substrate and the (Δ+1)-coloring rule (§1.4).

* :mod:`repro.selfstab.engine` — shared-variable model with a
  daemon-driven move semantics;
* :mod:`repro.selfstab.coloring` — id-priority greedy recoloring,
  stabilizing from arbitrary corruption.
"""

from repro.selfstab.coloring import ColoringRule, NodeState, corrupt_states
from repro.selfstab.engine import Rule, StabilizationResult, run_selfstab

__all__ = [
    "ColoringRule",
    "NodeState",
    "Rule",
    "StabilizationResult",
    "corrupt_states",
    "run_selfstab",
]
