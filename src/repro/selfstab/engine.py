"""Self-stabilization substrate (paper §1.4's other related model).

Self-stabilizing coloring (e.g. [9, 10, 11, 12]) makes the *opposite*
trade from the paper: the initial state may be arbitrarily corrupted
(all variables adversarial), but the execution must be failure-free
from then on; the paper instead assumes a clean start and tolerates
crashes throughout.  Experiment E16 runs the two models side by side.

The classic shared-variable model: each node holds an externally
readable state; a *daemon* repeatedly selects nodes among the
*enabled* ones (those whose guard holds given their neighbors' current
states); selected nodes atomically apply their move.  We implement the
**distributed daemon** (any non-empty subset of enabled nodes moves
simultaneously, reading pre-move states) — the central daemon (exactly
one node per step) is the special case of singleton selections, and the
same :class:`~repro.model.schedule.Schedule` zoo drives selections,
restricted to enabled nodes.

An execution is *stabilized* once no node is enabled; the
stabilization time is the number of moves performed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.model.schedule import Schedule, validate_step
from repro.model.topology import Topology
from repro.types import ProcessId

__all__ = ["Rule", "StabilizationResult", "run_selfstab"]


class Rule:
    """A self-stabilizing rule: a guard and a move, per node.

    Subclasses implement :meth:`enabled` and :meth:`move`; node states
    are opaque values read directly by neighbors (the shared-variable
    model has no registers/buffers — neighbors' *current* states are
    always visible).
    """

    name = "selfstab-rule"

    def enabled(self, state: Any, neighbor_states: Tuple[Any, ...]) -> bool:
        """Whether the node may move given its neighbors' states."""
        raise NotImplementedError

    def move(self, state: Any, neighbor_states: Tuple[Any, ...]) -> Any:
        """The node's new state (applied atomically)."""
        raise NotImplementedError

    def legitimate(self, states: Sequence[Any], topology: Topology) -> bool:
        """Whether a global configuration is legitimate (for reporting)."""
        raise NotImplementedError


@dataclass
class StabilizationResult:
    """Outcome of one self-stabilizing execution."""

    states: List[Any]
    moves: int
    steps: int
    stabilized: bool
    moves_per_node: Dict[ProcessId, int]

    @property
    def max_moves(self) -> int:
        """Largest per-node move count."""
        return max(self.moves_per_node.values(), default=0)


def run_selfstab(
    rule: Rule,
    topology: Topology,
    initial_states: Sequence[Any],
    schedule: Schedule,
    *,
    max_steps: int = 100_000,
) -> StabilizationResult:
    """Run ``rule`` from a (possibly corrupted) initial configuration.

    Each schedule step proposes an activation set; the daemon move is
    its intersection with the enabled nodes (empty intersections cost a
    step but no moves).  Stops when no node is enabled, the schedule
    ends, or ``max_steps`` elapse.
    """
    if len(initial_states) != topology.n:
        raise ExecutionError(
            f"got {len(initial_states)} states for {topology.n} nodes"
        )
    states = list(initial_states)
    moves = 0
    steps = 0
    moves_per_node: Dict[ProcessId, int] = {p: 0 for p in topology.processes()}

    def enabled_set() -> List[ProcessId]:
        return [
            p
            for p in topology.processes()
            if rule.enabled(
                states[p], tuple(states[q] for q in topology.neighbors(p))
            )
        ]

    for raw_step in schedule.steps(topology.n):
        if not enabled_set():
            return StabilizationResult(states, moves, steps, True, moves_per_node)
        if steps >= max_steps:
            break
        steps += 1
        movers = [
            p for p in validate_step(raw_step, topology.n) if p in enabled_set()
        ]
        if not movers:
            continue
        snapshot = list(states)  # distributed daemon: read pre-move states
        for p in movers:
            states[p] = rule.move(
                snapshot[p], tuple(snapshot[q] for q in topology.neighbors(p))
            )
            moves += 1
            moves_per_node[p] += 1

    return StabilizationResult(
        states, moves, steps, stabilized=not enabled_set(),
        moves_per_node=moves_per_node,
    )
