"""Self-stabilizing (Δ+1)-coloring (the §1.4 comparison baseline).

The textbook id-priority rule, in the shared-variable model of
:mod:`repro.selfstab.engine`:

* **guard** — node ``p`` is enabled iff its color is outside the
  ``{0, …, Δ}`` palette (corruption) or collides with a neighbor of
  *larger identifier* (identifiers are hardwired constants, not
  corruptible variables — the standard assumption);
* **move** — recolor to the smallest color unused by any neighbor.

Under the central daemon every move strictly decreases the number of
conflicting edges whose lower endpoint is enabled, so the system
stabilizes from *any* initial configuration within O(n + #conflicts)
moves; under the distributed daemon simultaneous moves can transiently
re-conflict, and the E16 benchmark measures the observed move counts
across daemons.  Once stabilized, the configuration is a proper
(Δ+1)-coloring.

Contrast with the paper's model (the point of E16): self-stabilization
tolerates *arbitrary initial corruption* but assumes a failure-free
execution and only guarantees eventual legitimacy; the paper's
algorithms assume a clean start but tolerate *crashes at any time* and
give each process a bounded personal step count (wait-freedom).  The
two guarantees are incomparable, and the cycle needs 3 colors in one
world and 5 in the other.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Sequence, Tuple

from repro.core.algorithm import mex
from repro.model.topology import Topology
from repro.selfstab.engine import Rule

__all__ = ["ColoringRule", "NodeState", "corrupt_states"]


class NodeState(NamedTuple):
    """Shared state of one node: hardwired id, corruptible color."""

    x: int
    color: int


class ColoringRule(Rule):
    """Id-priority greedy recoloring to a (Δ+1)-palette."""

    name = "selfstab-greedy-coloring"

    def __init__(self, max_degree: int):
        self.max_degree = max_degree
        self.palette = range(max_degree + 1)

    def enabled(self, state: NodeState, neighbor_states: Tuple[NodeState, ...]) -> bool:
        """Corrupted color, or collision with a larger-id neighbor."""
        if state.color not in self.palette:
            return True
        return any(
            q.color == state.color and q.x > state.x for q in neighbor_states
        )

    def move(self, state: NodeState, neighbor_states: Tuple[NodeState, ...]) -> NodeState:
        """First-fit against all current neighbor colors."""
        return NodeState(
            x=state.x, color=mex(q.color for q in neighbor_states),
        )

    def legitimate(self, states: Sequence[NodeState], topology: Topology) -> bool:
        """Proper coloring within the palette."""
        if any(s.color not in self.palette for s in states):
            return False
        return all(
            states[p].color != states[q].color for p, q in topology.edges()
        )


def corrupt_states(
    identifiers: Sequence[int], rng, *, color_space: int = 50,
) -> list:
    """An adversarially corrupted initial configuration.

    Colors drawn uniformly from ``[0, color_space)`` — typically far
    outside the palette and full of collisions.
    """
    return [
        NodeState(x=x, color=rng.randrange(color_space)) for x in identifiers
    ]
