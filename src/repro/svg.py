"""Self-contained SVG rendering of executions (no dependencies).

Produces publication-ready vector graphics for the two artifacts people
actually put in papers and bug reports:

* :func:`svg_timeline` — the activation timeline of an execution
  (one row per process, one column per time step; activations, returns
  and idleness distinguished), e.g. the E13 livelock's tell-tale
  two-process lockstep band;
* :func:`svg_ring` — the colored ring: nodes on a circle, filled with
  their output colors, pending/crashed nodes hollow.

Pure string assembly; written files are valid standalone ``.svg``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Sequence

from repro.model.execution import ExecutionResult
from repro.model.trace import Trace
from repro.types import ProcessId

__all__ = ["svg_timeline", "svg_ring", "COLOR_WHEEL"]

#: Fill colors for output palette indices 0..9.
COLOR_WHEEL = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
    "#76b7b2", "#edc948", "#ff9da7", "#9c755f", "#bab0ac",
]

_CELL = 14
_PAD = 40


def _color_of(output: Any) -> str:
    if isinstance(output, tuple):
        # Pair palettes: canonical triangular index.
        index = {(0, 0): 0, (0, 1): 1, (1, 0): 2, (0, 2): 3, (1, 1): 4, (2, 0): 5}
        return COLOR_WHEEL[index.get(output, 9) % len(COLOR_WHEEL)]
    if isinstance(output, int) and output >= 0:
        return COLOR_WHEEL[output % len(COLOR_WHEEL)]
    return "#888888"


def svg_timeline(trace: Trace, n: int, *, max_steps: int = 120) -> str:
    """An SVG activation timeline of a traced execution."""
    events = trace.events[:max_steps]
    width = _PAD + len(events) * _CELL + _PAD
    height = _PAD + n * _CELL + _PAD
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        '<style>text{font:10px monospace;fill:#333}</style>',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for p in range(n):
        y = _PAD + p * _CELL
        parts.append(f'<text x="6" y="{y + 10}">p{p}</text>')
        for i, event in enumerate(events):
            x = _PAD + i * _CELL
            if p in event.returned:
                fill = _color_of(event.returned[p])
                parts.append(
                    f'<rect x="{x}" y="{y}" width="{_CELL - 2}" '
                    f'height="{_CELL - 2}" fill="{fill}" stroke="#222"/>'
                )
            elif p in event.activated:
                parts.append(
                    f'<rect x="{x}" y="{y}" width="{_CELL - 2}" '
                    f'height="{_CELL - 2}" fill="#cfcfcf"/>'
                )
            else:
                parts.append(
                    f'<rect x="{x}" y="{y}" width="{_CELL - 2}" '
                    f'height="{_CELL - 2}" fill="#f4f4f4"/>'
                )
    for i in range(0, len(events), 5):
        parts.append(
            f'<text x="{_PAD + i * _CELL}" y="{_PAD - 8}">{i + 1}</text>'
        )
    parts.append(
        f'<text x="{_PAD}" y="{height - 12}">grey = activated, '
        "colored = returned (output color), pale = idle</text>"
    )
    parts.append("</svg>")
    return "".join(parts)


def svg_ring(
    inputs: Sequence[Any],
    outputs: Optional[Dict[ProcessId, Any]] = None,
    *,
    radius: int = 120,
) -> str:
    """An SVG picture of the ring with output colors."""
    n = len(inputs)
    outputs = outputs or {}
    size = 2 * radius + 2 * _PAD + 40
    center = size / 2
    node_r = max(8, min(16, int(2.2 * radius * math.pi / max(n, 1) / 3)))

    def position(i: int):
        angle = 2 * math.pi * i / n - math.pi / 2
        return (
            center + radius * math.cos(angle),
            center + radius * math.sin(angle),
        )

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">',
        '<style>text{font:9px monospace;fill:#333;text-anchor:middle}</style>',
        f'<rect width="{size}" height="{size}" fill="white"/>',
    ]
    for i in range(n):
        x1, y1 = position(i)
        x2, y2 = position((i + 1) % n)
        parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
            f'y2="{y2:.1f}" stroke="#999"/>'
        )
    for i in range(n):
        x, y = position(i)
        if i in outputs:
            fill = _color_of(outputs[i])
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{node_r}" '
                f'fill="{fill}" stroke="#222"/>'
            )
        else:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{node_r}" '
                'fill="white" stroke="#c33" stroke-dasharray="3,2"/>'
            )
        parts.append(f'<text x="{x:.1f}" y="{y + node_r + 11:.1f}">{inputs[i]}</text>')
    parts.append("</svg>")
    return "".join(parts)


def save_execution_svgs(
    result: ExecutionResult,
    inputs: Sequence[Any],
    basename: str,
) -> list:
    """Write ``<basename>_ring.svg`` (always) and
    ``<basename>_timeline.svg`` (when the result carries a trace);
    returns the written paths."""
    written = []
    ring_path = f"{basename}_ring.svg"
    with open(ring_path, "w", encoding="utf-8") as handle:
        handle.write(svg_ring(inputs, result.outputs))
    written.append(ring_path)
    if result.trace is not None:
        timeline_path = f"{basename}_timeline.svg"
        with open(timeline_path, "w", encoding="utf-8") as handle:
            handle.write(svg_timeline(result.trace, result.n))
        written.append(timeline_path)
    return written
