"""Register footprint: verifying the paper's O(log n)-bits claim (§2.1).

"In this paper, we do not assume that the registers are bounded.
Nevertheless, our algorithms only manipulate a constant number of
variables using O(log n) bits each."

This module measures that claim on recorded traces: every register
payload is decomposed into its fields, each field is priced in bits
(integers at their binary length, ``∞`` at one flag bit, tuples
recursively), and the maximum payload size over the whole execution is
reported.  Experiment E19 sweeps n and the identifier magnitude and
checks the footprint tracks ``O(log(max id))`` — in particular that
Algorithm 3's identifier *reduction* also reduces the register
footprint over time (the late-execution footprint is constant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.model.trace import Trace
from repro.types import BOTTOM, ProcessId

__all__ = ["payload_bits", "FootprintReport", "measure_footprint"]


def payload_bits(value: Any) -> int:
    """The bit cost of one register payload (fields priced recursively).

    Integers cost their binary length (at least 1 bit); ``math.inf``
    (the saturated round counter) costs 1 flag bit; tuples and named
    tuples cost the sum of their fields; ``⊥`` costs 0.
    """
    if value is BOTTOM or value is None:
        return 0
    if value is math.inf:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return max(1, value.bit_length())
    if isinstance(value, float):
        return 1 if value == math.inf else 64
    if isinstance(value, tuple):
        return sum(payload_bits(field) for field in value)
    raise TypeError(f"cannot price payload field of type {type(value).__name__}")


def _median(values: List[int]) -> int:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


@dataclass
class FootprintReport:
    """Register-size statistics of one traced execution.

    Local maxima never reduce their identifiers (Lemma 4.6), so the
    *maximum* footprint stays at the id magnitude by design; the
    reduction effect shows in the **median** and in the fraction of
    processes whose final write is smaller than their first.
    """

    max_bits: int
    max_bits_first_write: int
    max_bits_last_write: int
    median_bits_first_write: int
    median_bits_last_write: int
    shrunk_fraction: float
    per_process_max: Dict[ProcessId, int]

    @property
    def shrank(self) -> bool:
        """Whether the typical register got smaller over the execution
        (identifier reduction visibly at work)."""
        return (
            self.median_bits_last_write < self.median_bits_first_write
            or self.shrunk_fraction > 0.5
        )


def measure_footprint(trace: Trace, n: int) -> FootprintReport:
    """Measure register payload sizes over a recorded trace."""
    per_process: Dict[ProcessId, int] = {p: 0 for p in range(n)}
    first: Dict[ProcessId, int] = {}
    last: Dict[ProcessId, int] = {}
    for event in trace:
        for p, payload in event.writes.items():
            bits = payload_bits(payload)
            per_process[p] = max(per_process[p], bits)
            first.setdefault(p, bits)
            last[p] = bits
    if not last:
        return FootprintReport(0, 0, 0, 0, 0, 0.0, per_process)
    shrunk = sum(1 for p in last if last[p] < first[p])
    return FootprintReport(
        max_bits=max(per_process.values()),
        max_bits_first_write=max(first.values()),
        max_bits_last_write=max(last.values()),
        median_bits_first_write=_median(list(first.values())),
        median_bits_last_write=_median(list(last.values())),
        shrunk_fraction=shrunk / len(last),
        per_process_max=per_process,
    )
