"""The experiment harness shared by benchmarks, tests and the CLI.

Runs (algorithm × input family × scheduler) sweeps over ``n``, verifies
every execution against the paper's guarantees, and aggregates the
activation statistics into printable tables — the "rows the paper would
report" for experiments E1–E12 (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.complexity import summarize_activations
from repro.analysis.verify import Verdict, inputs_properly_color, verify_execution
from repro.errors import ReproError
from repro.model.execution import run_execution
from repro.model.schedule import Schedule
from repro.model.topology import Cycle, Topology

__all__ = [
    "TrialRecord",
    "run_trial",
    "sweep",
    "scheduler_suite",
    "format_table",
]


@dataclass
class TrialRecord:
    """One (algorithm, topology, inputs, schedule) execution, verified."""

    algorithm: str
    topology: str
    n: int
    scheduler: str
    inputs_label: str
    seed: Optional[int]
    max_activations: int
    mean_activations: float
    terminated: int
    all_terminated: bool
    verdict: Verdict
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_row(self) -> Dict[str, Any]:
        """Flat dict for table formatting."""
        row = {
            "algorithm": self.algorithm,
            "topology": self.topology,
            "n": self.n,
            "scheduler": self.scheduler,
            "inputs": self.inputs_label,
            "max_act": self.max_activations,
            "mean_act": round(self.mean_activations, 2),
            "terminated": f"{self.terminated}/{self.n}",
            "proper": self.verdict.proper,
            "palette_ok": self.verdict.palette_ok,
        }
        row.update(self.extra)
        return row


def run_trial(
    algorithm,
    topology: Topology,
    inputs: Sequence[int],
    schedule: Schedule,
    *,
    palette: Optional[Iterable[Any]] = None,
    inputs_label: str = "custom",
    seed: Optional[int] = None,
    max_time: int = 1_000_000,
    require_proper_inputs: bool = True,
) -> TrialRecord:
    """Run one verified execution and record its statistics.

    Raises :class:`ReproError` when the inputs violate the algorithms'
    precondition (adjacent identifiers equal), unless explicitly
    disabled for negative tests.
    """
    if require_proper_inputs and not inputs_properly_color(topology, inputs):
        raise ReproError("inputs do not properly color the topology")
    result = run_execution(algorithm, topology, inputs, schedule, max_time=max_time)
    verdict = verify_execution(topology, result, palette=palette)
    summary = summarize_activations(result)
    return TrialRecord(
        algorithm=getattr(algorithm, "name", type(algorithm).__name__),
        topology=topology.name,
        n=topology.n,
        scheduler=repr(schedule),
        inputs_label=inputs_label,
        seed=seed,
        max_activations=summary.max,
        mean_activations=summary.mean,
        terminated=summary.terminated,
        all_terminated=result.all_terminated,
        verdict=verdict,
    )


def sweep(
    algorithm_factory: Callable[[], Any],
    n_values: Sequence[int],
    input_fn: Callable[[int], Sequence[int]],
    schedule_fn: Callable[[int], Schedule],
    *,
    palette: Optional[Iterable[Any]] = None,
    inputs_label: str = "custom",
    topology_fn: Callable[[int], Topology] = Cycle,
    max_time: int = 1_000_000,
) -> List[TrialRecord]:
    """Sweep one configuration over the cycle sizes ``n_values``.

    ``input_fn(n)`` and ``schedule_fn(n)`` build per-size inputs and
    schedules; a fresh algorithm object per trial keeps accidental
    cross-trial state impossible.
    """
    records = []
    for n in n_values:
        records.append(
            run_trial(
                algorithm_factory(),
                topology_fn(n),
                input_fn(n),
                schedule_fn(n),
                palette=palette,
                inputs_label=inputs_label,
                max_time=max_time,
            )
        )
    return records


def scheduler_suite(n: int, seeds: Sequence[int] = (0, 1, 2)) -> Dict[str, Schedule]:
    """The default cross-section of schedulers used by the E1/E3/E8
    verification ensembles: synchronous, sequential, random, and the
    proof-extracted adversaries."""
    # Imported here to keep analysis importable without the scheduler zoo.
    from repro.schedulers import (
        AlternatingScheduler,
        BernoulliScheduler,
        BlockRoundRobinScheduler,
        LateWakeupScheduler,
        RoundRobinScheduler,
        SlowChainScheduler,
        StaggeredScheduler,
        SynchronousScheduler,
        UniformSubsetScheduler,
    )

    suite: Dict[str, Schedule] = {
        "synchronous": SynchronousScheduler(),
        "round-robin": RoundRobinScheduler(),
        "block-rr-3": BlockRoundRobinScheduler(3),
        "alternating": AlternatingScheduler(),
        "staggered": StaggeredScheduler(stagger=2),
        "late-wakeup": LateWakeupScheduler(sleepers=range(0, n, 3), wake_time=5 * n + 10),
        "slow-chain": SlowChainScheduler(slow=range(n // 2), slowdown=7),
    }
    for s in seeds:
        suite[f"bernoulli-{s}"] = BernoulliScheduler(p=0.4, seed=s)
        suite[f"subset-{s}"] = UniformSubsetScheduler(seed=s)
    return suite


def format_table(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[str(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rendered
    )
    return f"{header}\n{rule}\n{body}"
