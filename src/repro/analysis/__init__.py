"""Verification, chain structure, complexity accounting and experiments.

* :mod:`repro.analysis.verify` — the paper's correctness predicates and
  the Lemma 4.5 trace invariant;
* :mod:`repro.analysis.chains` — monotone identifier chains (the
  running-time driver, Remark 3.10);
* :mod:`repro.analysis.complexity` — theorem bound functions and
  scaling fits;
* :mod:`repro.analysis.inputs` — identifier-assignment families;
* :mod:`repro.analysis.experiments` — the sweep/ensemble harness.
"""

from repro.analysis.chains import (
    FullChainProfile,
    chain_profile,
    is_local_extremum,
    is_local_max,
    is_local_min,
    local_maxima,
    local_minima,
    longest_monotone_run,
    monotone_distance_to_max,
    monotone_distance_to_min,
)
from repro.analysis.complexity import (
    ActivationSummary,
    fit_linear,
    fit_logstar,
    lemma_3_9_bound,
    lemma_3_14_bound,
    logstar_budget,
    summarize_activations,
    theorem_3_1_bound,
    theorem_3_11_bound,
)
from repro.analysis.ensembles import Distribution, EnsembleReport, run_ensemble
from repro.analysis.footprint import FootprintReport, measure_footprint, payload_bits
from repro.analysis.experiments import (
    TrialRecord,
    format_table,
    run_trial,
    scheduler_suite,
    sweep,
)
from repro.analysis.inputs import (
    huge_ids,
    monotone_ids,
    proper_coloring_inputs,
    random_distinct_ids,
    sawtooth_ids,
    zigzag_ids,
)
from repro.analysis.verify import (
    Verdict,
    assert_palette,
    assert_proper_coloring,
    coloring_violations,
    identifiers_always_proper,
    inputs_properly_color,
    palette_violations,
    published_identifier_violations,
    verify_execution,
)

__all__ = [
    "ActivationSummary",
    "Distribution",
    "EnsembleReport",
    "FootprintReport",
    "FullChainProfile",
    "measure_footprint",
    "payload_bits",
    "run_ensemble",
    "TrialRecord",
    "Verdict",
    "assert_palette",
    "assert_proper_coloring",
    "chain_profile",
    "coloring_violations",
    "fit_linear",
    "fit_logstar",
    "format_table",
    "huge_ids",
    "identifiers_always_proper",
    "inputs_properly_color",
    "is_local_extremum",
    "is_local_max",
    "is_local_min",
    "lemma_3_14_bound",
    "lemma_3_9_bound",
    "local_maxima",
    "local_minima",
    "logstar_budget",
    "longest_monotone_run",
    "monotone_distance_to_max",
    "monotone_distance_to_min",
    "monotone_ids",
    "palette_violations",
    "proper_coloring_inputs",
    "published_identifier_violations",
    "random_distinct_ids",
    "run_trial",
    "sawtooth_ids",
    "scheduler_suite",
    "summarize_activations",
    "sweep",
    "theorem_3_11_bound",
    "theorem_3_1_bound",
    "verify_execution",
    "zigzag_ids",
]
