"""Monotone identifier chains: the structure driving running times.

Algorithm 1's and 2's convergence is governed not by ``n`` but by the
*monotone chain structure* of the identifier assignment (Remark 3.10):

* a process is **locally extremal** if its identifier is larger than
  both neighbors' (local maximum) or smaller than both (local minimum);
* the **monotone distance** ``ℓ`` of a non-extremal process to its
  nearest local maximum is the length of the (unique, in a cycle)
  strictly-increasing path from it to a local maximum; ``ℓ'`` likewise
  for the local minimum along the strictly-decreasing path;
* Lemma 3.9 bounds Algorithm 1 activations by
  ``min{3ℓ, 3ℓ', ℓ+ℓ'} + 4``; Lemma 3.14 bounds Algorithm 2 non-minima
  by ``3ℓ + 4``.

These functions operate on the sequence of identifiers *in ring order*
(position ``i`` adjacent to ``i±1 mod n``), which is how
:class:`~repro.model.topology.Cycle` numbers its processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

__all__ = [
    "is_local_max",
    "is_local_min",
    "is_local_extremum",
    "local_maxima",
    "local_minima",
    "monotone_distance_to_max",
    "monotone_distance_to_min",
    "longest_monotone_run",
    "FullChainProfile",
    "chain_profile",
]


def _neighbors(i: int, n: int) -> tuple:
    return ((i - 1) % n, (i + 1) % n)


def is_local_max(ids: Sequence[int], i: int) -> bool:
    """Whether position ``i`` holds a local maximum on the ring."""
    n = len(ids)
    left, right = _neighbors(i, n)
    return ids[i] > ids[left] and ids[i] > ids[right]


def is_local_min(ids: Sequence[int], i: int) -> bool:
    """Whether position ``i`` holds a local minimum on the ring."""
    n = len(ids)
    left, right = _neighbors(i, n)
    return ids[i] < ids[left] and ids[i] < ids[right]


def is_local_extremum(ids: Sequence[int], i: int) -> bool:
    """Local max or local min (the paper's "locally extremal")."""
    return is_local_max(ids, i) or is_local_min(ids, i)


def local_maxima(ids: Sequence[int]) -> List[int]:
    """All ring positions holding local maxima."""
    return [i for i in range(len(ids)) if is_local_max(ids, i)]


def local_minima(ids: Sequence[int]) -> List[int]:
    """All ring positions holding local minima."""
    return [i for i in range(len(ids)) if is_local_min(ids, i)]


def monotone_distance_to_max(ids: Sequence[int], i: int) -> int:
    """Length ``ℓ`` of the increasing path from ``i`` to a local max.

    0 for a local maximum.  For a local minimum both directions
    increase; the shorter of the two applies (the "closest" extremum).
    Requires adjacent-distinct identifiers.
    """
    return _monotone_distance(ids, i, upward=True)


def monotone_distance_to_min(ids: Sequence[int], i: int) -> int:
    """Length ``ℓ'`` of the decreasing path from ``i`` to a local min."""
    return _monotone_distance(ids, i, upward=False)


def _monotone_distance(ids: Sequence[int], i: int, upward: bool) -> int:
    n = len(ids)

    def climb(start: int, direction: int) -> int:
        """Steps strictly monotone in `direction` until an extremum."""
        steps = 0
        current = start
        while steps <= n:  # safety bound; a proper ring always breaks out
            nxt = (current + direction) % n
            better = ids[nxt] > ids[current] if upward else ids[nxt] < ids[current]
            if not better:
                return steps
            current = nxt
            steps += 1
        raise ValueError("identifiers do not properly color the ring")

    left, right = _neighbors(i, n)
    goes_left = ids[left] > ids[i] if upward else ids[left] < ids[i]
    goes_right = ids[right] > ids[i] if upward else ids[right] < ids[i]
    if not goes_left and not goes_right:
        return 0  # i is itself the extremum sought
    candidates = []
    if goes_left:
        candidates.append(1 + climb((i - 1) % n, -1))
    if goes_right:
        candidates.append(1 + climb((i + 1) % n, +1))
    return min(candidates)


def longest_monotone_run(ids: Sequence[int]) -> int:
    """Number of processes in the longest strictly monotone ring path.

    This is the quantity Remark 3.10 identifies as the true convergence
    driver of Algorithms 1 and 2: identifiers ``0, 1, …, n−1`` in ring
    order give ``n`` (worst case), a zigzag gives 2 (best case).
    """
    n = len(ids)
    if n < 2:
        return n
    best = 1
    # Walk the ring once in each direction counting maximal increasing runs.
    for direction in (+1, -1):
        run = 1
        for offset in range(1, 2 * n):
            prev = (direction * (offset - 1)) % n
            curr = (direction * offset) % n
            if ids[curr] > ids[prev]:
                run += 1
                best = max(best, run)
                if run >= n:  # fully monotone ring is impossible; cap
                    return n
            else:
                run = 1
    return min(best, n)


def chain_profile(ids: Sequence[int]) -> "FullChainProfile":
    """Compute the full chain structure of an id assignment on the ring."""
    n = len(ids)
    dist_max = [monotone_distance_to_max(ids, i) for i in range(n)]
    dist_min = [monotone_distance_to_min(ids, i) for i in range(n)]
    return FullChainProfile(
        n=n,
        num_maxima=len(local_maxima(ids)),
        num_minima=len(local_minima(ids)),
        longest_run=longest_monotone_run(ids),
        distances_to_max=dist_max,
        distances_to_min=dist_min,
    )


@dataclass
class FullChainProfile:
    """Chain structure with per-position monotone distances."""

    n: int
    num_maxima: int
    num_minima: int
    longest_run: int
    distances_to_max: List[int]
    distances_to_min: List[int]

    def alg1_bound(self, i: int) -> int:
        """Lemma 3.9 / Theorem 3.1 activation bound for position ``i``."""
        l_max = self.distances_to_max[i]
        l_min = self.distances_to_min[i]
        if l_max == 0 or l_min == 0:
            return 4  # local extrema return within 4 activations
        return min(3 * l_max, 3 * l_min, l_max + l_min) + 4

    def alg2_bound(self, i: int) -> int:
        """Lemma 3.14 activation bound for a non-minimum at position
        ``i``; local minima get the global ``3n + 8`` fallback of the
        Theorem 3.11 proof."""
        if self.distances_to_min[i] == 0:
            return 3 * self.n + 8
        return 3 * self.distances_to_max[i] + 4

    @property
    def worst_alg1_bound(self) -> int:
        """Theorem 3.1's per-execution bound: max over positions."""
        return max(self.alg1_bound(i) for i in range(self.n))

    @property
    def worst_alg2_bound(self) -> int:
        """Theorem 3.11's per-execution bound: max over positions."""
        return max(self.alg2_bound(i) for i in range(self.n))
