"""Specification checking for executions (the paper's three guarantees).

Each of Theorems 3.1, 3.11 and 4.4 promises, for every execution:

* **Termination** — every process that is activated enough returns
  within the stated activation bound (checked via
  :mod:`repro.analysis.complexity`);
* **Palette** — returned colors lie in the stated palette;
* **Correctness** — the outputs properly color the *graph induced by
  the terminating processes* (crashed/starved processes impose no
  constraint).

This module provides those predicates plus the execution-wide
invariants used in Section 4's analysis, most importantly Lemma 4.5:
at every time of every execution, the published identifiers ``X̂_p``
form a proper coloring of the cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ColoringViolation, PaletteViolation
from repro.model.execution import ExecutionResult
from repro.model.topology import Topology
from repro.model.trace import Trace
from repro.types import BOTTOM, ProcessId

__all__ = [
    "coloring_violations",
    "assert_proper_coloring",
    "palette_violations",
    "assert_palette",
    "inputs_properly_color",
    "Verdict",
    "verify_execution",
    "published_identifier_violations",
    "identifiers_always_proper",
]


def coloring_violations(
    topology: Topology, outputs: Dict[ProcessId, Any]
) -> List[Tuple[ProcessId, ProcessId]]:
    """Edges of the induced graph whose endpoints share an output color.

    Only edges with *both* endpoints in ``outputs`` are considered —
    the paper's correctness condition quantifies over the graph induced
    by the terminating processes.
    """
    bad = []
    for p, q in topology.edges():
        if p in outputs and q in outputs and outputs[p] == outputs[q]:
            bad.append((p, q))
    return bad


def assert_proper_coloring(topology: Topology, outputs: Dict[ProcessId, Any]) -> None:
    """Raise :class:`ColoringViolation` on any monochromatic edge."""
    bad = coloring_violations(topology, outputs)
    if bad:
        p, q = bad[0]
        raise ColoringViolation(
            f"{len(bad)} monochromatic edge(s); first: "
            f"{p} ~ {q} both colored {outputs[p]!r}"
        )


def palette_violations(
    outputs: Dict[ProcessId, Any], palette: Iterable[Any]
) -> Dict[ProcessId, Any]:
    """Processes whose output falls outside ``palette``."""
    allowed = set(palette)
    return {p: c for p, c in outputs.items() if c not in allowed}


def assert_palette(outputs: Dict[ProcessId, Any], palette: Iterable[Any]) -> None:
    """Raise :class:`PaletteViolation` on any out-of-palette output."""
    bad = palette_violations(outputs, palette)
    if bad:
        p, c = next(iter(bad.items()))
        raise PaletteViolation(
            f"{len(bad)} out-of-palette output(s); first: process {p} -> {c!r}"
        )


def inputs_properly_color(topology: Topology, inputs: Sequence[Any]) -> bool:
    """Whether the identifier assignment satisfies the precondition
    ``X_p ≠ X_q`` for every edge ``p ~ q`` (Remark 3.10: uniqueness is
    not needed, only adjacent distinctness)."""
    return all(inputs[p] != inputs[q] for p, q in topology.edges())


@dataclass
class Verdict:
    """Aggregated verification result for one execution."""

    all_terminated: bool
    terminated_count: int
    proper: bool
    palette_ok: bool
    round_complexity: int
    monochromatic_edges: List[Tuple[ProcessId, ProcessId]] = field(default_factory=list)
    out_of_palette: Dict[ProcessId, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Correctness + palette (termination is schedule-dependent and
        judged separately against activation bounds)."""
        return self.proper and self.palette_ok


def verify_execution(
    topology: Topology,
    result: ExecutionResult,
    palette: Optional[Iterable[Any]] = None,
) -> Verdict:
    """Check one execution result against the paper's guarantees."""
    mono = coloring_violations(topology, result.outputs)
    bad_palette = (
        palette_violations(result.outputs, palette) if palette is not None else {}
    )
    return Verdict(
        all_terminated=result.all_terminated,
        terminated_count=len(result.outputs),
        proper=not mono,
        palette_ok=not bad_palette,
        round_complexity=result.round_complexity,
        monochromatic_edges=mono,
        out_of_palette=bad_palette,
    )


# ----------------------------------------------------------------------
# Execution-wide invariants (Lemma 4.5)
# ----------------------------------------------------------------------
def published_identifier_violations(
    topology: Topology, trace: Trace
) -> List[Tuple[int, ProcessId, ProcessId, Any]]:
    """Times at which two adjacent *published* identifiers collide.

    Checks, for every recorded register snapshot and every edge
    ``p ~ q``, that ``X̂_p ≠ X̂_q`` whenever both registers are written
    — the invariant of Lemma 4.5 that the green-light mechanism of
    Algorithm 3 protects.  Requires an execution recorded with
    ``record_registers=True`` and register payloads exposing an ``x``
    field (all four algorithms do).

    Returns ``(time, p, q, x)`` tuples for every violation.
    """
    violations = []
    edges = list(topology.edges())
    for event in trace:
        snapshot = event.registers
        if snapshot is None:
            continue
        for p, q in edges:
            vp, vq = snapshot[p], snapshot[q]
            if vp is BOTTOM or vq is BOTTOM:
                continue
            if vp.x == vq.x:
                violations.append((event.time, p, q, vp.x))
    return violations


def identifiers_always_proper(topology: Topology, trace: Trace) -> bool:
    """Whether Lemma 4.5's invariant held throughout the execution."""
    return not published_identifier_violations(topology, trace)
