"""Round-complexity accounting and theoretical bounds (§2.2, §3, §4).

Collects the activation-count bookkeeping shared by tests, benchmarks
and the CLI: per-theorem bound functions, empirical scaling summaries,
and a tiny least-squares fit used to report the measured constant in
``rounds ≈ c · log* n + d`` for experiment E4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.coin_tossing import log_star
from repro.model.execution import ExecutionResult
from repro.types import ProcessId

__all__ = [
    "theorem_3_1_bound",
    "lemma_3_9_bound",
    "lemma_3_14_bound",
    "theorem_3_11_bound",
    "logstar_budget",
    "ActivationSummary",
    "summarize_activations",
    "fit_against",
    "fit_logstar",
    "fit_linear",
]


def theorem_3_1_bound(n: int) -> int:
    """Theorem 3.1: every Algorithm 1 process returns within this many
    activations on ``C_n`` — ``⌊3n/2⌋ + 4``."""
    return (3 * n) // 2 + 4


def lemma_3_9_bound(dist_to_max: int, dist_to_min: int) -> int:
    """Lemma 3.9: per-process Algorithm 1 bound
    ``min{3ℓ, 3ℓ', ℓ+ℓ'} + 4`` (4 for local extrema)."""
    if dist_to_max == 0 or dist_to_min == 0:
        return 4
    return min(3 * dist_to_max, 3 * dist_to_min, dist_to_max + dist_to_min) + 4


def lemma_3_14_bound(dist_to_max: int) -> int:
    """Lemma 3.14: Algorithm 2 bound ``3ℓ + 4`` for non-minima at
    monotone distance ``ℓ`` from the nearest local maximum."""
    return 3 * dist_to_max + 4


def theorem_3_11_bound(n: int) -> int:
    """Theorem 3.11's global Algorithm 2 bound: ``3n + 8`` (local
    minima terminate at most one step after both neighbors)."""
    return 3 * n + 8


def logstar_budget(n: int, c: float = 12.0, d: float = 30.0) -> float:
    """An O(log* n) activation budget ``c · log*(n) + d`` for Algorithm 3.

    The paper gives no explicit constants; the defaults are calibrated
    empirically (see EXPERIMENTS.md, E4) with generous headroom, so the
    budget doubles as a wait-freedom regression alarm: if a change to
    the algorithm pushes measured activations past the budget, tests
    fail.
    """
    return c * log_star(max(n, 2)) + d


@dataclass
class ActivationSummary:
    """Distribution summary of per-process activation counts."""

    n: int
    max: int
    mean: float
    p95: float
    terminated: int

    def __str__(self) -> str:
        return (
            f"n={self.n} max={self.max} mean={self.mean:.2f} "
            f"p95={self.p95:.1f} terminated={self.terminated}/{self.n}"
        )


def summarize_activations(result: ExecutionResult) -> ActivationSummary:
    """Summarize the activation counts of one execution."""
    counts = sorted(result.activations.values())
    n = len(counts)
    mean = sum(counts) / n if n else 0.0
    p95 = counts[min(n - 1, int(math.ceil(0.95 * n)) - 1)] if n else 0.0
    return ActivationSummary(
        n=n,
        max=counts[-1] if counts else 0,
        mean=mean,
        p95=float(p95),
        terminated=len(result.outputs),
    )


def fit_against(
    xs: Sequence[float], ys: Sequence[float]
) -> Tuple[float, float]:
    """Ordinary least squares ``y ≈ slope·x + intercept``.

    Pure-Python (no numpy dependency in the core library); used on a
    handful of sweep points.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two matching points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("degenerate fit: all x identical")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def fit_logstar(ns: Sequence[int], rounds: Sequence[float]) -> Tuple[float, float]:
    """Fit ``rounds ≈ c · log*(n) + d`` — the E4 scaling report."""
    return fit_against([log_star(n) for n in ns], rounds)


def fit_linear(ns: Sequence[int], rounds: Sequence[float]) -> Tuple[float, float]:
    """Fit ``rounds ≈ c · n + d`` — the E3/E5 scaling report."""
    return fit_against(list(map(float, ns)), rounds)
