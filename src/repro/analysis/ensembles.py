"""Ensemble statistics: distributions over many verified executions.

The worst case is a supremum over schedules, so single runs say little;
this module aggregates *ensembles* — (scheduler × seed × input) grids —
into distribution summaries (min/mean/percentiles/max of activation
counts, termination rates, palette usage) used by the experiment
harness, the adversary-gallery example and the E-benchmark tables.
Histograms are plain dicts so reports stay dependency-free.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.verify import verify_execution
from repro.model.execution import ensure_engine, run_execution
from repro.model.schedule import Schedule
from repro.model.topology import Topology

__all__ = ["Distribution", "EnsembleReport", "run_ensemble"]


@dataclass
class Distribution:
    """Summary statistics of one scalar sample."""

    count: int
    minimum: float
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Distribution":
        """Summarize a non-empty sample."""
        if not values:
            raise ValueError("cannot summarize an empty sample")
        ordered = sorted(values)
        n = len(ordered)

        def pct(q: float) -> float:
            return float(ordered[min(n - 1, int(math.ceil(q * n)) - 1)])

        return cls(
            count=n,
            minimum=float(ordered[0]),
            mean=sum(ordered) / n,
            p50=pct(0.50),
            p95=pct(0.95),
            p99=pct(0.99),
            maximum=float(ordered[-1]),
        )

    def __str__(self) -> str:
        return (
            f"min={self.minimum:g} mean={self.mean:.2f} p50={self.p50:g} "
            f"p95={self.p95:g} p99={self.p99:g} max={self.maximum:g} "
            f"(n={self.count})"
        )


@dataclass
class EnsembleReport:
    """Aggregated verdicts and distributions of one ensemble."""

    runs: int
    terminated_runs: int
    proper_runs: int
    palette_ok_runs: int
    max_activations: Distribution
    mean_activations: Distribution
    colors_used: Dict[Any, int] = field(default_factory=dict)
    activation_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def all_ok(self) -> bool:
        """All runs terminated, proper and within palette."""
        return (
            self.runs
            == self.terminated_runs
            == self.proper_runs
            == self.palette_ok_runs
        )

    def __str__(self) -> str:
        return (
            f"runs={self.runs} terminated={self.terminated_runs} "
            f"proper={self.proper_runs} palette_ok={self.palette_ok_runs}\n"
            f"max activations : {self.max_activations}\n"
            f"mean activations: {self.mean_activations}\n"
            f"colors used     : {sorted(self.colors_used, key=repr)}"
        )


def _fresh_schedule(entry: Union[Schedule, Callable[[], Schedule]]) -> Schedule:
    """A schedule instance private to one run.

    ``Schedule.steps`` is *supposed* to restart per call, but nothing
    enforces it: a stateful schedule (consuming an iterator, popping
    from a shared list, advancing an RNG stored on ``self``) would
    silently leak state across the grid and corrupt every run after
    the first.  So each run gets its own instance — zero-argument
    factories are called, plain schedules are deep-copied — *unless*
    the schedule declares :attr:`~repro.model.schedule.Schedule.
    reusable` (immutable parameters, all iteration state created per
    ``steps`` call), in which case the deep copy would only clone
    frozen parameters and the instance is shared as-is.

    The declaration is honored only when it appears on the *exact*
    class of the instance (mirroring kernel exact-type dispatch): a
    subclass inherits the attribute but may add mutable state its base
    never had, so inherited ``reusable = True`` still deep-copies.
    """
    if isinstance(entry, Schedule):
        if "reusable" in vars(type(entry)) and entry.reusable:
            return entry
        return copy.deepcopy(entry)
    if callable(entry):
        return entry()
    raise TypeError(
        f"expected a Schedule or a zero-argument schedule factory, got {entry!r}"
    )


def run_ensemble(
    algorithm_factory: Callable[[], Any],
    topology: Topology,
    inputs_list: Iterable[Sequence[int]],
    schedules: Iterable[Tuple[str, Union[Schedule, Callable[[], Schedule]]]],
    *,
    palette: Optional[Iterable[Any]] = None,
    max_time: int = 200_000,
    engine: str = "fast",
) -> EnsembleReport:
    """Run the (inputs × schedule) grid, verify everything, aggregate.

    ``schedules`` yields ``(label, schedule_or_factory)`` pairs.  Every
    run of the grid executes against a *fresh* schedule instance (a
    deep copy, or a new factory call; schedules declaring
    ``reusable = True`` are shared as-is) so that stateful schedules
    cannot leak consumed steps or RNG state across runs — see
    :func:`_fresh_schedule`.  ``engine`` selects the execution engine
    for every run of the grid (see
    :data:`repro.model.execution.ENGINES`); ``engine="batch"`` packs
    the whole grid into one lockstep :func:`repro.model.batch.run_batch`
    call when a batched kernel covers the configuration (same
    aggregates, bit-identical per-run results), falling back to
    per-run execution otherwise.  ``engine="auto"`` does the same
    packing for multi-run grids (an ensemble is exactly the
    replicas-many workload the batch engine exists for) and otherwise
    defers to per-run adaptive selection.
    """
    ensure_engine(engine)
    maxima: List[float] = []
    means: List[float] = []
    colors: Dict[Any, int] = {}
    histogram: Dict[int, int] = {}
    runs = terminated = proper = palette_ok = 0
    palette_list = list(palette) if palette is not None else None

    schedule_pairs = list(schedules)
    grid: List[Tuple[Sequence[int], Schedule]] = [
        (inputs, _fresh_schedule(schedule_entry))
        for inputs in inputs_list
        for _label, schedule_entry in schedule_pairs
    ]

    results: Optional[Iterable[Any]] = None
    if engine == "auto" and len(grid) > 1:
        engine = "batch"
    if engine == "batch" and grid:
        from repro.model.batch import run_batch

        results = run_batch(
            [algorithm_factory() for _ in grid],
            topology,
            [list(inputs) for inputs, _ in grid],
            [schedule for _, schedule in grid],
            max_time=max_time,
        )
    if results is None:
        results = (
            run_execution(
                algorithm_factory(), topology, inputs, schedule,
                max_time=max_time, engine=engine,
            )
            for inputs, schedule in grid
        )

    for result in results:
        verdict = verify_execution(topology, result, palette=palette_list)
        runs += 1
        terminated += result.all_terminated
        proper += verdict.proper
        palette_ok += verdict.palette_ok
        counts = list(result.activations.values())
        maxima.append(max(counts))
        means.append(sum(counts) / len(counts))
        for color in result.outputs.values():
            colors[color] = colors.get(color, 0) + 1
        for count in counts:
            histogram[count] = histogram.get(count, 0) + 1

    return EnsembleReport(
        runs=runs,
        terminated_runs=terminated,
        proper_runs=proper,
        palette_ok_runs=palette_ok,
        max_activations=Distribution.of(maxima),
        mean_activations=Distribution.of(means),
        colors_used=colors,
        activation_histogram=histogram,
    )
