"""Identifier-assignment generators (the algorithms' inputs).

Each process starts with a unique identifier in ``[0, poly(n)]``
(§2.1).  The running times of Algorithms 1 and 2 depend on the
monotone-chain structure of the assignment (Remark 3.10), so the
experiment suite needs controlled families:

* :func:`monotone_ids` — ``0, 1, …, n−1`` in ring order: one maximal
  increasing run of length ``n``; the worst case for Algorithms 1–2
  and the stress case for Algorithm 3's reduction;
* :func:`zigzag_ids` — alternating low/high: runs of length 2, the
  best case;
* :func:`sawtooth_ids` — increasing runs of a chosen length, to sweep
  the chain-length axis independently of ``n``;
* :func:`random_distinct_ids` — uniform distinct ids from a poly(n)
  space (the "typical" instance; expected longest run is O(log n/log
  log n));
* :func:`huge_ids` — distinct ids near ``2^bits``, stressing the
  O(log* n) id-reduction pipeline of Algorithm 3 with astronomically
  long binary representations;
* :func:`proper_coloring_inputs` — inputs that are merely a proper
  coloring with ``k`` values, not unique ids (Remark 3.10's relaxed
  precondition).
"""

from __future__ import annotations

import random
from typing import List, Optional

__all__ = [
    "monotone_ids",
    "zigzag_ids",
    "sawtooth_ids",
    "random_distinct_ids",
    "huge_ids",
    "proper_coloring_inputs",
]


def monotone_ids(n: int) -> List[int]:
    """``0, 1, …, n−1`` around the ring — the Θ(n)-chain worst case."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return list(range(n))


def zigzag_ids(n: int) -> List[int]:
    """Alternate small and large ids: every process is a local extremum.

    For odd ``n`` a perfect alternation is impossible; one position gets
    an intermediate value, keeping adjacent ids distinct and runs of
    length at most 3.

    Vectorized when numpy is available (the E1–E3 benchmarks generate
    inputs at ``n = 10⁶⁺``, where the per-node loop dominates setup
    time); the pure-Python path below is the semantics oracle and the
    two are bit-identical — same plain ``int`` values, same list.
    """
    if n < 3:
        raise ValueError("need n >= 3 for a ring assignment")
    from repro.model.batch import load_numpy

    np = load_numpy()
    if np is not None:
        ids_arr = np.empty(n, dtype=np.int64)
        ids_arr[0::2] = np.arange((n + 1) // 2, dtype=np.int64)
        ids_arr[1::2] = np.arange(n, n + n // 2, dtype=np.int64)
        ids = ids_arr.tolist()
    else:
        ids = [0] * n
        low, high = 0, n
        for i in range(n):
            if i % 2 == 0:
                ids[i] = low
                low += 1
            else:
                ids[i] = high
                high += 1
    if n % 2 == 1:
        # positions n-1 and 0 are both "low"; bump the last to a middle
        # value distinct from its neighbors.
        ids[n - 1] = n + n // 2 + 1
    return ids


def sawtooth_ids(n: int, run: int) -> List[int]:
    """Increasing runs of length ``run`` separated by drops.

    ``run = n`` degenerates to :func:`monotone_ids`; ``run = 2`` is a
    zigzag.  Ids are unique; each tooth uses a fresh block of values
    with teeth descending across blocks so drops are strict.

    Vectorized when numpy is available (same discipline as
    :func:`zigzag_ids`): position ``i`` in tooth ``t`` carries
    ``(teeth − t)·(run + 1) + (i mod run)·teeth·(run + 2)``, which is
    two ``arange``-derived planes added elementwise.
    """
    if run < 2:
        raise ValueError("run must be >= 2")
    if n < 3:
        raise ValueError("need n >= 3")
    teeth = (n + run - 1) // run
    from repro.model.batch import load_numpy

    np = load_numpy()
    if np is not None:
        pos = np.arange(n, dtype=np.int64)
        tooth = pos // run
        ids_arr = (teeth - tooth) * (run + 1) + (pos % run) * teeth * (run + 2)
        ids = ids_arr.tolist()
    else:
        ids = []
        for tooth in range(teeth):
            base = (teeth - tooth) * (run + 1)
            length = min(run, n - len(ids))
            ids.extend(base + j * teeth * (run + 2) for j in range(length))
    # Ensure the wrap-around edge (last, first) is not an accidental tie.
    assert len(ids) == n
    if ids[-1] == ids[0]:
        ids[-1] += 1
    return ids


def random_distinct_ids(
    n: int, seed: int = 0, id_space: Optional[int] = None
) -> List[int]:
    """``n`` distinct identifiers drawn uniformly from ``[0, id_space)``.

    Default space is ``n³`` (a poly(n) namespace as in §2.1).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    space = id_space if id_space is not None else max(n ** 3, 8)
    if space < n:
        raise ValueError(f"id space {space} too small for {n} distinct ids")
    rng = random.Random(seed)
    return rng.sample(range(space), n)


def huge_ids(n: int, bits: int = 128, seed: int = 0) -> List[int]:
    """``n`` distinct identifiers of ~``bits`` binary digits.

    Exercises Algorithm 3's claim of O(log* n) dependence on the *id
    magnitude*: each Cole–Vishkin reduction roughly exponentially
    shrinks the bit length, so even 4096-bit ids converge in a handful
    of reductions.
    """
    if bits < 8:
        raise ValueError("bits must be >= 8")
    rng = random.Random(seed)
    seen = set()
    ids = []
    while len(ids) < n:
        x = rng.getrandbits(bits) | (1 << (bits - 1))
        if x not in seen:
            seen.add(x)
            ids.append(x)
    return ids


def proper_coloring_inputs(n: int, k: int = 3) -> List[int]:
    """Ring inputs that are a proper ``k``-coloring, not unique ids.

    Remark 3.10: Theorem 3.1 only needs ``X_p ≠ X_q`` for neighbors;
    with ``k`` initial values, monotone chains have length at most
    ``k`` and Algorithms 1–2 converge in O(k).  Pattern: ``0,1,0,1,…``
    with a trailing ``2`` when ``n`` is odd (needs ``k ≥ 3`` then).
    """
    if n < 3:
        raise ValueError("need n >= 3")
    if k < 2 or (n % 2 == 1 and k < 3):
        raise ValueError("k >= 2 needed; k >= 3 when n is odd")
    ids = [i % 2 for i in range(n)]
    if n % 2 == 1:
        ids[n - 1] = 2
    return ids
