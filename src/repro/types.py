"""Shared type aliases and sentinels used across the library.

The paper's model (Section 2.1) initializes every single-writer register
with a distinguished value ``⊥`` that no algorithm ever writes.  We
model it with the :data:`BOTTOM` singleton so that ``⊥`` compares
unequal to every payload an algorithm can produce, and so that
accidental arithmetic on an uninitialized register fails loudly instead
of silently producing a bogus color.
"""

from __future__ import annotations

from typing import Tuple, Union

__all__ = [
    "BOTTOM",
    "Bottom",
    "Color",
    "ColorPair",
    "ProcessId",
    "Time",
]


class Bottom:
    """Singleton sentinel for an uninitialized register (the paper's ``⊥``).

    ``Bottom`` is falsy, hashable, and reprs as ``⊥``.  Exactly one
    instance exists, exposed as :data:`BOTTOM`; identity comparison
    (``value is BOTTOM``) is the idiomatic check.
    """

    _instance = None

    def __new__(cls) -> "Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        # Keep the singleton property across pickling (used by the
        # bounded explorer when hashing configurations).
        return (Bottom, ())


BOTTOM = Bottom()

#: Identifier of a process; the engine uses 0..n-1 positions on the cycle.
ProcessId = int

#: Discrete global time of the schedule, starting at 1 as in Section 2.2.
Time = int

#: A scalar output color (Algorithms 2 and 3 output colors in {0..4}).
Color = int

#: A pair color (Algorithms 1 and 4 output pairs (a, b) with a+b bounded).
ColorPair = Tuple[int, int]

#: Anything an algorithm may output.
AnyColor = Union[Color, ColorPair]
