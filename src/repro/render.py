"""ASCII rendering of cycles, colorings and execution timelines.

Small presentation helpers shared by the CLI and the examples: no
external dependencies, plain text, suitable for piping into logs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.model.execution import ExecutionResult
from repro.model.topology import Topology
from repro.model.trace import Trace
from repro.types import ProcessId

__all__ = ["render_cycle", "render_outputs", "render_timeline", "color_glyph"]

#: Distinct glyphs for small palettes (index = color).
_GLYPHS = "01234567896ABCDEF"


def color_glyph(color: Any) -> str:
    """A one-character glyph for a color (scalar or pair)."""
    if isinstance(color, tuple):
        return f"({color[0]},{color[1]})"
    if isinstance(color, int) and 0 <= color < len(_GLYPHS):
        return _GLYPHS[color]
    return "?"


def render_cycle(
    inputs: Sequence[Any],
    outputs: Optional[Dict[ProcessId, Any]] = None,
    *,
    width: int = 72,
) -> str:
    """Render a cycle's ids and (optionally) output colors as rows.

    Example output for ``n = 6``::

        pos    0    1    2    3    4    5
        id    17    3   42    8   99   54
        col    0    1    0    2    1    0
    """
    n = len(inputs)
    outputs = outputs or {}
    cell = max(4, max(len(str(x)) for x in inputs) + 1)
    per_row = max(1, (width - 6) // cell)

    lines = []
    for start in range(0, n, per_row):
        idx = range(start, min(start + per_row, n))
        lines.append("pos " + "".join(str(i).rjust(cell) for i in idx))
        lines.append("id  " + "".join(str(inputs[i]).rjust(cell) for i in idx))
        if outputs:
            lines.append(
                "col "
                + "".join(
                    (str(outputs[i]) if i in outputs else "·").rjust(cell)
                    for i in idx
                )
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def render_outputs(result: ExecutionResult) -> str:
    """One-line-per-process summary of an execution's outcome."""
    lines = []
    for p in range(result.n):
        if p in result.outputs:
            lines.append(
                f"p{p}: color={result.outputs[p]!r} "
                f"after {result.activations.get(p, 0)} activations "
                f"(returned at t={result.return_times[p]})"
            )
        else:
            lines.append(
                f"p{p}: no output ({result.activations.get(p, 0)} activations)"
            )
    return "\n".join(lines)


def render_timeline(
    trace: Trace,
    n: int,
    *,
    max_steps: int = 60,
) -> str:
    """A compact activation timeline: one row per process, one column
    per time step; ``█`` = activated, ``R`` = returned, ``·`` = idle."""
    events = trace.events[:max_steps]
    rows = []
    for p in range(n):
        cells = []
        for e in events:
            if p in e.returned:
                cells.append("R")
            elif p in e.activated:
                cells.append("█")
            else:
                cells.append("·")
        rows.append(f"p{p:<3d} " + "".join(cells))
    header = "     " + "".join(
        str(e.time % 10) for e in events
    )
    suffix = "" if len(trace.events) <= max_steps else f"  (+{len(trace.events) - max_steps} more)"
    return header + suffix + "\n" + "\n".join(rows)
