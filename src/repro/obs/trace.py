"""End-to-end tracing: trace contexts, the flight recorder, exporters.

The metrics layer (:mod:`repro.obs.metrics`) answers *how much* —
counts and histograms with no notion of causality.  This module
answers *where did this particular request's time go*: every unit of
work carries a :class:`TraceContext` (128-bit ``trace_id``, 64-bit
``span_id``, parent link, sampled flag), completed spans land in a
lock-protected bounded ring buffer (:class:`FlightRecorder`), and the
buffer exports as Chrome trace-event JSON — loadable directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` — or as
JSONL for programmatic analysis.

Propagation follows the repo's pickle-light discipline end to end:

* **HTTP** — the ``X-Repro-Trace-Id`` header
  (``<32 hex trace_id>-<16 hex span_id>-<2 hex flags>``) crosses the
  wire in both directions; :meth:`TraceContext.from_header` /
  :meth:`TraceContext.to_header` are the codec.
* **Threads and asyncio tasks** — a :mod:`contextvars` variable holds
  the current context; :func:`use_context` pins it for a block (an
  executor thread, a batcher task).
* **Worker processes** — :meth:`TraceContext.to_dict` rides the pool's
  JSON-dict protocol into the worker, which records spans into a local
  recorder and ships them back as dicts;
  :func:`record_remote_spans` merges them into the parent's recorder,
  re-parented exactly as sent (the worker's parent ids point at spans
  minted in the serving process, so the tree joins up).

**Zero overhead when disabled.**  Tracing is off by default:
:func:`active_recorder` returns ``None`` and every hook —
:func:`start_span`, :func:`record_timed`, :func:`record_event` — is a
no-op behind that one module-global check, the same contract the
metrics registry keeps.  The shared timing hooks in
:mod:`repro.obs.spans` check both switches; the combined disabled cost
is two module-global ``None`` comparisons, enforced by
``benchmarks/test_obs_overhead.py``.

Usage::

    with tracing() as recorder:
        with use_context(TraceContext.new_root()):
            with start_span("campaign", grid=120):
                run_campaign(...)
    write_trace_artifact("trace.json", recorder.snapshot())
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Union

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "SpanRecord",
    "FlightRecorder",
    "active_recorder",
    "enable_tracing",
    "disable_tracing",
    "tracing",
    "is_recording",
    "current_context",
    "use_context",
    "start_span",
    "record_timed",
    "record_event",
    "record_complete",
    "record_remote_spans",
    "deterministic_context",
    "to_chrome_trace",
    "render_chrome_json",
    "render_jsonl",
    "write_trace_artifact",
]

#: The HTTP header carrying a trace context in either direction:
#: ``<32 hex trace_id>-<16 hex span_id>-<2 hex flags>`` (flags bit 0 =
#: sampled, mirroring W3C traceparent's flag byte).
TRACE_HEADER = "X-Repro-Trace-Id"

#: Default ring-buffer capacity of a :class:`FlightRecorder`.
DEFAULT_CAPACITY = 4096

_HEX = frozenset("0123456789abcdef")


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


def _is_hex(value: str, length: int) -> bool:
    return len(value) == length and set(value) <= _HEX


@dataclass(frozen=True)
class TraceContext:
    """One position in one trace: *where new spans attach*.

    ``span_id`` is the id of the span that is the current parent — new
    child spans set ``parent_id = span_id``.  A root context (no spans
    yet) has an empty ``span_id``; its children become trace roots.
    Contexts are immutable values: propagation is always by copy, never
    by mutation, so a context captured at admission time stays valid
    however late the work actually runs.
    """

    trace_id: str
    span_id: str = ""
    parent_id: Optional[str] = None
    sampled: bool = True

    @classmethod
    def new_root(
        cls, *, sampled: bool = True, trace_id: Optional[str] = None
    ) -> "TraceContext":
        """A fresh trace with no spans recorded yet."""
        return cls(trace_id=trace_id or _new_trace_id(), sampled=sampled)

    def child(self) -> "TraceContext":
        """The context a new child span runs under."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_new_span_id(),
            parent_id=self.span_id or None,
            sampled=self.sampled,
        )

    # -- wire codecs ---------------------------------------------------
    def to_header(self) -> str:
        """The ``X-Repro-Trace-Id`` header value of this context."""
        span = self.span_id if _is_hex(self.span_id, 16) else "0" * 16
        return f"{self.trace_id}-{span}-{'01' if self.sampled else '00'}"

    @classmethod
    def from_header(cls, value: Optional[str]) -> Optional["TraceContext"]:
        """Parse a header value; ``None`` on anything malformed (a bad
        client header must never fail a request — it is just ignored
        and a fresh context minted instead)."""
        if not value or not isinstance(value, str):
            return None
        parts = value.strip().lower().split("-")
        if len(parts) != 3:
            return None
        trace_id, span_id, flags = parts
        if not (_is_hex(trace_id, 32) and _is_hex(span_id, 16) and _is_hex(flags, 2)):
            return None
        return cls(
            trace_id=trace_id,
            span_id=span_id,
            sampled=bool(int(flags, 16) & 1),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-dict shape for the pool's worker protocol."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(d["trace_id"]),
            span_id=str(d.get("span_id") or ""),
            parent_id=d.get("parent_id") or None,
            sampled=bool(d.get("sampled", True)),
        )


def deterministic_context(key: str) -> "TraceContext":
    """A root context derived from a content hash, stable across runs.

    Campaign tasks use their ``task_hash`` here so that a ``--resume``
    re-run (or a re-journal of the same grid) produces the *same*
    trace and root-span ids — timelines from different sessions of one
    campaign join up instead of fragmenting.
    """
    clean = "".join(c for c in key.lower() if c in _HEX) or "0"
    repeats = (32 // len(clean)) + 1
    stretched = clean * repeats
    return TraceContext(trace_id=stretched[:32], span_id=stretched[:16])


@dataclass
class SpanRecord:
    """One completed span (or instant event, ``duration == 0``).

    ``start`` is wall-clock epoch seconds (``time.time()``) — the only
    clock that lines up across the serving process and pool workers —
    and ``duration`` is measured with ``perf_counter`` where the code
    can afford two timestamps.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start: float
    duration: float
    attributes: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attributes": self.attributes,
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "SpanRecord":
        return cls(
            name=str(d["name"]),
            trace_id=str(d["trace_id"]),
            span_id=str(d["span_id"]),
            parent_id=d.get("parent_id") or None,
            start=float(d["start"]),
            duration=float(d["duration"]),
            attributes=dict(d.get("attributes") or {}),
            pid=int(d.get("pid", 0)),
            tid=int(d.get("tid", 0)),
        )


class FlightRecorder:
    """Lock-protected bounded ring buffer of the last N spans.

    The recorder never grows past ``capacity``: when full, the oldest
    span is dropped and counted, so a long-running server keeps a
    recent flight window at fixed memory instead of an unbounded log.
    Thread-safe — spans arrive from the event loop, executor threads
    and the pool supervisor concurrently.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: "deque[SpanRecord]" = deque(maxlen=capacity)
        self._recorded = 0

    def record(self, span: SpanRecord) -> None:
        with self._lock:
            self._spans.append(span)
            self._recorded += 1

    def extend(self, spans: Iterable[SpanRecord]) -> None:
        with self._lock:
            for span in spans:
                self._spans.append(span)
                self._recorded += 1

    def snapshot(self) -> List[SpanRecord]:
        """The retained spans, oldest first (a copy; safe to iterate)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    @property
    def recorded(self) -> int:
        """Total spans ever recorded (including since-dropped ones)."""
        with self._lock:
            return self._recorded

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring bound."""
        with self._lock:
            return self._recorded - len(self._spans)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "spans": len(self._spans),
                "recorded": self._recorded,
                "dropped": self._recorded - len(self._spans),
            }


# ----------------------------------------------------------------------
# The module-level tracing switch and the current-context variable
# ----------------------------------------------------------------------

_RECORDER: Optional[FlightRecorder] = None

_CURRENT: "contextvars.ContextVar[Optional[TraceContext]]" = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def active_recorder() -> Optional[FlightRecorder]:
    """The recorder collecting right now, or ``None`` when tracing is
    disabled — the single check every tracing hook performs."""
    return _RECORDER


def enable_tracing(
    recorder: Optional[FlightRecorder] = None,
) -> FlightRecorder:
    """Start recording into ``recorder`` (a fresh one by default)."""
    global _RECORDER
    _RECORDER = recorder if recorder is not None else FlightRecorder()
    return _RECORDER


def disable_tracing() -> None:
    """Stop recording; every tracing hook becomes a no-op again."""
    global _RECORDER
    _RECORDER = None


@contextmanager
def tracing(
    recorder: Optional[FlightRecorder] = None,
) -> Iterator[FlightRecorder]:
    """Enable tracing for a ``with`` block, restoring the previous
    recorder (or disabled state) on exit — mirrors
    :func:`repro.obs.metrics.collecting`."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder if recorder is not None else FlightRecorder()
    try:
        yield _RECORDER
    finally:
        _RECORDER = previous


def current_context() -> Optional[TraceContext]:
    """The trace context of the running task/thread, if any."""
    return _CURRENT.get()


def is_recording() -> bool:
    """True iff a recorder is active *and* the current context exists
    and is sampled — i.e. a span recorded right now would be kept."""
    if _RECORDER is None:
        return False
    ctx = _CURRENT.get()
    return ctx is not None and ctx.sampled


@contextmanager
def use_context(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Pin ``ctx`` as the current context for a block.

    Works across ``await`` points (contextvars follow asyncio tasks)
    and is the explicit hand-off for executor threads, which do not
    inherit the submitting task's context."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


class _NoopSpan:
    """The disabled-mode span: enter/exit/set_attribute do nothing."""

    __slots__ = ()
    context: Optional[TraceContext] = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass

    def set_attribute(self, key: str, value: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class ActiveSpan:
    """A live span: context manager that records itself on exit.

    While entered, :attr:`context` (the span's own position in the
    trace) is the current context, so nested spans and
    :func:`record_timed` leaves parent under it automatically.
    """

    __slots__ = (
        "name", "context", "attributes", "recorder",
        "_wall", "_perf", "_token",
    )

    def __init__(
        self,
        name: str,
        context: TraceContext,
        attributes: Dict[str, Any],
        recorder: FlightRecorder,
    ):
        self.name = name
        self.context = context
        self.attributes = attributes
        self.recorder = recorder
        self._wall = 0.0
        self._perf = 0.0
        self._token: Optional[contextvars.Token] = None

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "ActiveSpan":
        self._token = _CURRENT.set(self.context)
        self._wall = time.time()
        self._perf = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        duration = time.perf_counter() - self._perf
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.recorder.record(
            SpanRecord(
                name=self.name,
                trace_id=self.context.trace_id,
                span_id=self.context.span_id,
                parent_id=self.context.parent_id,
                start=self._wall,
                duration=duration,
                attributes=self.attributes,
                pid=os.getpid(),
                tid=threading.get_ident(),
            )
        )


def start_span(
    name: str,
    *,
    context: Optional[TraceContext] = None,
    **attributes: Any,
):
    """Open a span under ``context`` (default: the current context).

    Returns a context manager; a shared no-op when tracing is disabled,
    no context is available, or the trace is unsampled — the disabled
    path is one module-global check plus at most one contextvar read.
    """
    recorder = _RECORDER
    if recorder is None:
        return _NOOP_SPAN
    ctx = context if context is not None else _CURRENT.get()
    if ctx is None or not ctx.sampled:
        return _NOOP_SPAN
    return ActiveSpan(name, ctx.child(), dict(attributes), recorder)


def record_timed(
    name: str,
    start: float,
    duration: float,
    attributes: Optional[Mapping[str, Any]] = None,
) -> None:
    """Record an already-measured leaf span under the current context.

    The hook for code that timed itself (``Span``/``Stopwatch``): no
    context push, no child minting beyond the span's own id.  No-op
    unless :func:`is_recording`.
    """
    recorder = _RECORDER
    if recorder is None:
        return
    ctx = _CURRENT.get()
    if ctx is None or not ctx.sampled:
        return
    recorder.record(
        SpanRecord(
            name=name,
            trace_id=ctx.trace_id,
            span_id=_new_span_id(),
            parent_id=ctx.span_id or None,
            start=start,
            duration=duration,
            attributes=dict(attributes or {}),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
    )


def record_event(
    name: str,
    *,
    context: Optional[TraceContext] = None,
    **attributes: Any,
) -> None:
    """Record an instant (zero-duration) event under ``context``
    (default: current).  Used for linkage marks — cache hits,
    single-flight joins, coalesce followers."""
    recorder = _RECORDER
    if recorder is None:
        return
    ctx = context if context is not None else _CURRENT.get()
    if ctx is None or not ctx.sampled:
        return
    recorder.record(
        SpanRecord(
            name=name,
            trace_id=ctx.trace_id,
            span_id=_new_span_id(),
            parent_id=ctx.span_id or None,
            start=time.time(),
            duration=0.0,
            attributes=dict(attributes),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
    )


def record_complete(
    name: str,
    context: Optional[TraceContext],
    start: float,
    duration: float,
    *,
    recorder: Optional[FlightRecorder] = None,
    **attributes: Any,
) -> None:
    """Record a span whose identity *is* ``context`` (span_id and
    parent taken verbatim) — for spans whose ids were minted up front
    so children could be created before the span completes (the
    campaign per-task root spans)."""
    rec = recorder if recorder is not None else _RECORDER
    if rec is None or context is None or not context.sampled:
        return
    rec.record(
        SpanRecord(
            name=name,
            trace_id=context.trace_id,
            span_id=context.span_id or _new_span_id(),
            parent_id=context.parent_id,
            start=start,
            duration=duration,
            attributes=dict(attributes),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
    )


def record_remote_spans(records: Iterable[Mapping[str, Any]]) -> int:
    """Merge span dicts shipped back from a worker process into the
    active recorder; returns how many were kept.  Malformed entries
    are skipped — a worker bug must not poison the parent."""
    recorder = _RECORDER
    if recorder is None:
        return 0
    kept = []
    for raw in records:
        try:
            kept.append(SpanRecord.from_dict(raw))
        except (KeyError, TypeError, ValueError):
            continue
    recorder.extend(kept)
    return len(kept)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def to_chrome_trace(
    records: Iterable[SpanRecord],
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The Chrome trace-event (JSON object) form of a span list.

    Every span renders as one complete event (``"ph": "X"``) with
    microsecond timestamps; the trace/span/parent ids ride in ``args``
    so Perfetto's flow/search UI can join the tree.  The result is
    loadable as-is in https://ui.perfetto.dev or ``chrome://tracing``.
    """
    events: List[Dict[str, Any]] = []
    for record in records:
        events.append(
            {
                "ph": "X",
                "cat": "repro",
                "name": record.name,
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": record.pid,
                "tid": record.tid,
                "args": {
                    "trace_id": record.trace_id,
                    "span_id": record.span_id,
                    "parent_id": record.parent_id,
                    **record.attributes,
                },
            }
        )
    payload: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["otherData"] = metadata
    return payload


def render_chrome_json(
    records: Iterable[SpanRecord],
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> str:
    """:func:`to_chrome_trace` serialized to a JSON string."""
    return json.dumps(
        to_chrome_trace(records, metadata=metadata), sort_keys=True
    )


def render_jsonl(records: Iterable[SpanRecord]) -> str:
    """One JSON object per line — the programmatic-analysis format."""
    lines = [json.dumps(r.to_dict(), sort_keys=True) for r in records]
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace_artifact(
    path: Union[str, Path],
    records: Iterable[SpanRecord],
    *,
    fmt: str = "chrome",
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a trace artifact: ``fmt="chrome"`` (Perfetto-loadable
    JSON, the default) or ``fmt="jsonl"``."""
    if fmt not in ("chrome", "jsonl"):
        raise ValueError(f"unknown trace format {fmt!r} (chrome, jsonl)")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if fmt == "chrome":
        path.write_text(render_chrome_json(records, metadata=metadata) + "\n")
    else:
        path.write_text(render_jsonl(records))
    return path
