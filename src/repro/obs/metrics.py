"""The metrics registry: counters, gauges and histograms.

The paper's results are *quantitative* — activation bounds, palette
sizes, round counts — so the library measures itself with first-class
metrics instead of post-processing :class:`ExecutionResult` objects
after the fact.  Three metric kinds cover every need of the engines,
the campaign runner and the bound monitors:

* **counter** — a monotonically increasing total (``engine_steps_total``);
* **gauge** — a last-write-wins level (``campaign_queue_depth``);
* **histogram** — a scalar sample summarized by count/sum/min/mean/
  percentiles/max (``engine_run_seconds``).

Every metric series is identified by ``(name, labels)`` where labels
are a *deterministic* sorted tuple of ``(key, value)`` pairs — the same
observations always produce the same snapshot, independent of call
order or process, which is what lets the differential-equivalence
harness diff the metrics of the two execution engines.

**Zero overhead when disabled.**  Collection is off by default: the
single module-level :func:`active_registry` returns ``None`` and every
instrumentation site is gated on that one check, so the compiled
fast-path engine keeps its throughput.  Enable collection for a block
with :func:`collecting`::

    with collecting() as registry:
        run_execution(...)
    print(registry.snapshot())

Timing metrics (name ending in ``_seconds``) and the metrics listed in
:data:`NONDETERMINISTIC_METRICS` are machine- or engine-dependent;
:meth:`MetricsRegistry.deterministic_snapshot` excludes them, leaving
exactly the values that must be bit-identical across engines.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "MetricsRegistry",
    "NONDETERMINISTIC_METRICS",
    "active_registry",
    "enable_metrics",
    "disable_metrics",
    "collecting",
    "record_execution",
]

#: Label sets are canonicalized to sorted tuples of (key, str(value)).
LabelKey = Tuple[Tuple[str, str], ...]

#: Metrics that legitimately differ across engines or machines even on
#: identical workloads (compilation details, live queue levels); they
#: are excluded from :meth:`MetricsRegistry.deterministic_snapshot`
#: together with every ``*_seconds`` timing metric.
NONDETERMINISTIC_METRICS = frozenset(
    {
        "engine_kernel_builds_total",
        "campaign_queue_depth",
        # Batch-engine packing metrics describe how replicas were
        # grouped, not the modeled system; the same workload packs
        # differently across backends and fallback paths.
        "batch_replicas",
        "batch_occupancy",
        # Wide-engine step-shape metrics describe how activation sets
        # were routed (dense vs sparse, frontier occupancy), which is
        # an engine property, not a modeled-system one; the adaptive-
        # selection counter additionally depends on numpy availability.
        "wide_steps_total",
        "wide_frontier_occupancy",
        "engine_auto_selected_total",
        # Worker-pool supervision metrics are pure operational state:
        # live occupancy, scheduling races and fault-recovery counts
        # vary run to run on identical workloads.
        "pool_workers",
        "pool_workers_busy",
        "pool_queue_depth",
        "pool_tasks_total",
        "pool_task_retries_total",
        "pool_worker_restarts_total",
        "pool_respawns_delayed_total",
        # Chaos-layer counters: which probes fire depends on the fault
        # plan armed for the run, not on the modeled system.
        "chaos_faults_injected_total",
        "service_cache_digest_failures_total",
    }
)

#: Cap on stored histogram observations per series; count/sum stay
#: exact beyond it, percentiles are computed over the retained prefix.
_HISTOGRAM_SAMPLE_CAP = 10_000


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _percentile(ordered: List[float], q: float) -> float:
    n = len(ordered)
    return float(ordered[min(n - 1, int(math.ceil(q * n)) - 1)])


class _Histogram:
    """One histogram series: exact count/sum plus a bounded sample."""

    __slots__ = ("count", "total", "minimum", "maximum", "sample")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.sample: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self.sample) < _HISTOGRAM_SAMPLE_CAP:
            self.sample.append(value)

    def stats(self) -> Dict[str, float]:
        ordered = sorted(self.sample)
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "mean": (self.total / self.count) if self.count else 0.0,
            "p50": _percentile(ordered, 0.50) if ordered else 0.0,
            "p95": _percentile(ordered, 0.95) if ordered else 0.0,
            "p99": _percentile(ordered, 0.99) if ordered else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class MetricsRegistry:
    """In-memory metric store with deterministic label sets.

    The API is name-based (no handle objects): call sites pass the
    metric name and labels directly, the registry interns the series.
    A name is permanently bound to its first-seen kind — observing a
    counter name as a gauge is a programming error and raises.
    """

    def __init__(self) -> None:
        # name -> ("counter"|"gauge"|"histogram", {labelkey: value})
        self._metrics: Dict[str, Tuple[str, Dict[LabelKey, Any]]] = {}

    # -- writing -------------------------------------------------------
    def _series(self, name: str, kind: str) -> Dict[LabelKey, Any]:
        entry = self._metrics.get(name)
        if entry is None:
            entry = (kind, {})
            self._metrics[name] = entry
        elif entry[0] != kind:
            raise ValueError(
                f"metric {name!r} is a {entry[0]}, not a {kind}"
            )
        return entry[1]

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Increment counter ``name`` by ``value`` (must be >= 0)."""
        if value < 0:
            raise ValueError(f"counter {name!r} cannot decrease ({value})")
        series = self._series(name, "counter")
        key = _label_key(labels)
        series[key] = series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._series(name, "gauge")[_label_key(labels)] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one histogram observation."""
        series = self._series(name, "histogram")
        key = _label_key(labels)
        histogram = series.get(key)
        if histogram is None:
            histogram = series[key] = _Histogram()
        histogram.observe(value)

    # -- reading -------------------------------------------------------
    def value(self, name: str, **labels: Any) -> Optional[Any]:
        """Current value of one series (histograms: their stats dict)."""
        entry = self._metrics.get(name)
        if entry is None:
            return None
        raw = entry[1].get(_label_key(labels))
        if isinstance(raw, _Histogram):
            return raw.stats()
        return raw

    def names(self) -> List[str]:
        """All metric names seen so far, sorted."""
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """The whole registry as a JSON-serializable mapping.

        Shape: ``{name: {"kind": ..., "samples": [{"labels": {...},
        "value"|...stats}]}}`` with samples sorted by label key, so two
        registries with equal contents produce equal snapshots.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._metrics):
            kind, series = self._metrics[name]
            samples = []
            for key in sorted(series):
                raw = series[key]
                sample: Dict[str, Any] = {"labels": dict(key)}
                if isinstance(raw, _Histogram):
                    sample.update(raw.stats())
                else:
                    sample["value"] = raw
                samples.append(sample)
            out[name] = {"kind": kind, "samples": samples}
        return out

    def deterministic_snapshot(
        self, ignore_labels: Tuple[str, ...] = ()
    ) -> Dict[str, Dict[str, Any]]:
        """The snapshot restricted to machine-independent metrics.

        Drops every ``*_seconds`` timing metric and the
        :data:`NONDETERMINISTIC_METRICS`; ``ignore_labels`` removes the
        named label keys from every sample (pass ``("engine",)`` to
        compare the two execution engines' emissions).
        """
        out: Dict[str, Dict[str, Any]] = {}
        for name, entry in self.snapshot().items():
            if name.endswith("_seconds") or name in NONDETERMINISTIC_METRICS:
                continue
            samples = []
            for sample in entry["samples"]:
                labels = {
                    k: v
                    for k, v in sample["labels"].items()
                    if k not in ignore_labels
                }
                samples.append({**sample, "labels": labels})
            samples.sort(key=lambda s: sorted(s["labels"].items()))
            out[name] = {"kind": entry["kind"], "samples": samples}
        return out


# ----------------------------------------------------------------------
# The module-level collection switch (the single flag every hook checks)
# ----------------------------------------------------------------------

_ACTIVE: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The registry collecting right now, or ``None`` when disabled.

    This is the *only* check instrumentation sites perform; when it
    returns ``None`` every hook is a no-op.
    """
    return _ACTIVE


def enable_metrics(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Start collecting into ``registry`` (a fresh one by default)."""
    global _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    return _ACTIVE


def disable_metrics() -> None:
    """Stop collecting; hooks become no-ops again."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Enable collection for a ``with`` block, restoring the previous
    state (including a previously active registry) on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry if registry is not None else MetricsRegistry()
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# Shared emission helpers (duck-typed; no engine imports, no cycles)
# ----------------------------------------------------------------------

def record_execution(
    registry: MetricsRegistry,
    engine: str,
    algorithm: str,
    result: Any,
    elapsed: Optional[float] = None,
) -> None:
    """Emit the per-run engine metrics from one ``ExecutionResult``.

    Both engines call this with identical metric names so their
    emissions can be diffed; every deterministic value below is a pure
    function of the result, hence bit-identical across engines on
    equal results.  ``elapsed`` feeds the (nondeterministic) wall-time
    histogram when provided.
    """
    labels = {"engine": engine, "algorithm": algorithm}
    registry.inc("engine_runs_total", 1, **labels)
    registry.inc("engine_steps_total", result.final_time, **labels)
    registry.inc(
        "engine_activations_total", sum(result.activations.values()), **labels
    )
    registry.inc("engine_returns_total", len(result.outputs), **labels)
    registry.inc(
        "engine_time_exhausted_total", int(result.time_exhausted), **labels
    )
    registry.set_gauge(
        "engine_last_round_complexity", result.round_complexity, **labels
    )
    if elapsed is not None:
        registry.observe("engine_run_seconds", elapsed, **labels)
