"""Lightweight spans: wall-clock timers feeding the metrics registry.

A *span* times one phase of work — a kernel build, a journal fsync, a
whole execution — and records the duration into the histogram
``<name>_seconds`` of the active registry.  When tracing
(:mod:`repro.obs.trace`) is also on, the same measurement additionally
lands in the flight recorder as a leaf span under the current trace
context — one instrumentation point, both signals.  When both
collection and tracing are disabled the span resolves to a shared
no-op object whose enter/exit do nothing, so wrapping hot paths costs
one :func:`~repro.obs.metrics.active_registry` check plus one
:func:`~repro.obs.trace.active_recorder` check and nothing else.

Usage::

    with span("campaign_journal_append"):
        fh.write(line); os.fsync(fh.fileno())

For code that times many small slices and wants a single histogram
observation per run (the reference engine's per-step phases), use
:class:`Stopwatch` to accumulate and flush once.
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry, active_registry
from repro.obs.trace import active_recorder, record_timed

__all__ = ["span", "Span", "Stopwatch"]


class Span:
    """Context manager timing one block into ``<name>_seconds`` and,
    when tracing is on, into the flight recorder."""

    __slots__ = ("name", "labels", "registry", "started", "elapsed", "_wall")

    def __init__(
        self, name: str, registry: Optional[MetricsRegistry], labels: dict
    ):
        self.name = name
        self.labels = labels
        self.registry = registry
        self.started = 0.0
        self.elapsed: Optional[float] = None
        self._wall = 0.0

    def __enter__(self) -> "Span":
        self._wall = time.time()
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.elapsed = time.perf_counter() - self.started
        if self.registry is not None:
            self.registry.observe(
                f"{self.name}_seconds", self.elapsed, **self.labels
            )
        record_timed(self.name, self._wall, self.elapsed, self.labels)


class _NoopSpan:
    """The disabled-mode span: enter/exit are no-ops."""

    __slots__ = ()
    elapsed = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **labels: Any):
    """A timing context for ``<name>_seconds`` (and a trace leaf span
    when tracing is on), or a no-op when both collection and tracing
    are disabled — two module-global checks, nothing else."""
    registry = active_registry()
    if registry is None and active_recorder() is None:
        return _NOOP
    return Span(name, registry, labels)


class Stopwatch:
    """Accumulates many timed slices, flushed as one observation.

    Built for per-step phase profiling: ``tick()`` before the phase,
    ``tock()`` after, :meth:`flush` once per run.  A stopwatch is only
    constructed when collection is enabled, so the disabled-mode cost
    of a profiled loop is one ``None`` check per phase.
    """

    __slots__ = ("total", "_started")

    def __init__(self) -> None:
        self.total = 0.0
        self._started = 0.0

    def tick(self) -> None:
        self._started = time.perf_counter()

    def tock(self) -> None:
        self.total += time.perf_counter() - self._started

    def flush(
        self,
        name: str,
        registry: Optional[MetricsRegistry],
        **labels: Any,
    ) -> None:
        if registry is not None:
            registry.observe(f"{name}_seconds", self.total, **labels)
        # Trace leaf span for the accumulated phase; slices are not
        # contiguous, so anchor the span to end at flush time.
        record_timed(name, time.time() - self.total, self.total, labels)
