"""repro.obs — the instrumentation layer (metrics, spans, monitors).

Zero-overhead-when-disabled observability for the whole stack:

* :mod:`repro.obs.metrics` — the counter/gauge/histogram registry with
  deterministic label sets and the single module-level collection
  switch every instrumentation site checks;
* :mod:`repro.obs.spans` — wall-clock timers feeding ``*_seconds``
  histograms (kernel builds, engine phases, journal fsyncs);
* :mod:`repro.obs.monitors` — pluggable bound monitors that check the
  paper's activation budgets, palettes and proper-coloring promise
  *live* during execution and flag the first violating step;
* :mod:`repro.obs.exposition` — JSON artifacts and Prometheus text
  exposition of a collected snapshot.

Quickstart::

    from repro.obs import collecting, default_monitors
    from repro.model.execution import run_execution

    monitors = default_monitors("alg1", n)
    with collecting() as registry:
        result = run_execution(alg, Cycle(n), ids, sched, monitors=monitors)
    assert all(m.ok for m in monitors)
    print(registry.snapshot()["engine_activations_total"])

See docs/OBSERVABILITY.md for the metric-name catalog.
"""

from repro.obs.exposition import (
    render_json,
    render_prometheus,
    write_json_artifact,
)
from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    collecting,
    disable_metrics,
    enable_metrics,
    record_execution,
)
from repro.obs.monitors import (
    BOUND_CATALOG,
    ActivationBudgetMonitor,
    BoundMonitor,
    BoundViolation,
    PaletteGaugeMonitor,
    ProperColoringMonitor,
    budget_for,
    default_monitors,
)
from repro.obs.spans import Span, Stopwatch, span

__all__ = [
    "ActivationBudgetMonitor",
    "BOUND_CATALOG",
    "BoundMonitor",
    "BoundViolation",
    "MetricsRegistry",
    "PaletteGaugeMonitor",
    "ProperColoringMonitor",
    "Span",
    "Stopwatch",
    "active_registry",
    "budget_for",
    "collecting",
    "default_monitors",
    "disable_metrics",
    "enable_metrics",
    "record_execution",
    "render_json",
    "render_prometheus",
    "span",
    "write_json_artifact",
]
