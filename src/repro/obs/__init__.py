"""repro.obs — the instrumentation layer (metrics, spans, monitors).

Zero-overhead-when-disabled observability for the whole stack:

* :mod:`repro.obs.metrics` — the counter/gauge/histogram registry with
  deterministic label sets and the single module-level collection
  switch every instrumentation site checks;
* :mod:`repro.obs.spans` — wall-clock timers feeding ``*_seconds``
  histograms (kernel builds, engine phases, journal fsyncs);
* :mod:`repro.obs.monitors` — pluggable bound monitors that check the
  paper's activation budgets, palettes and proper-coloring promise
  *live* during execution and flag the first violating step;
* :mod:`repro.obs.exposition` — JSON artifacts and Prometheus text
  exposition of a collected snapshot;
* :mod:`repro.obs.trace` — end-to-end tracing: trace-context
  propagation (HTTP header, threads, worker processes), the bounded
  flight recorder, and Chrome-trace/JSONL exporters for Perfetto.

Quickstart::

    from repro.obs import collecting, default_monitors
    from repro.model.execution import run_execution

    monitors = default_monitors("alg1", n)
    with collecting() as registry:
        result = run_execution(alg, Cycle(n), ids, sched, monitors=monitors)
    assert all(m.ok for m in monitors)
    print(registry.snapshot()["engine_activations_total"])

See docs/OBSERVABILITY.md for the metric-name catalog.
"""

from repro.obs.exposition import (
    render_json,
    render_prometheus,
    write_json_artifact,
)
from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    collecting,
    disable_metrics,
    enable_metrics,
    record_execution,
)
from repro.obs.monitors import (
    BOUND_CATALOG,
    ActivationBudgetMonitor,
    BoundMonitor,
    BoundViolation,
    PaletteGaugeMonitor,
    ProperColoringMonitor,
    budget_for,
    default_monitors,
)
from repro.obs.spans import Span, Stopwatch, span
from repro.obs.trace import (
    TRACE_HEADER,
    FlightRecorder,
    SpanRecord,
    TraceContext,
    active_recorder,
    current_context,
    deterministic_context,
    disable_tracing,
    enable_tracing,
    is_recording,
    record_event,
    record_remote_spans,
    record_timed,
    render_chrome_json,
    render_jsonl,
    start_span,
    to_chrome_trace,
    tracing,
    use_context,
    write_trace_artifact,
)

__all__ = [
    "ActivationBudgetMonitor",
    "BOUND_CATALOG",
    "BoundMonitor",
    "BoundViolation",
    "FlightRecorder",
    "MetricsRegistry",
    "PaletteGaugeMonitor",
    "ProperColoringMonitor",
    "Span",
    "SpanRecord",
    "Stopwatch",
    "TRACE_HEADER",
    "TraceContext",
    "active_recorder",
    "active_registry",
    "budget_for",
    "collecting",
    "current_context",
    "default_monitors",
    "deterministic_context",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "is_recording",
    "record_event",
    "record_execution",
    "record_remote_spans",
    "record_timed",
    "render_chrome_json",
    "render_json",
    "render_jsonl",
    "render_prometheus",
    "span",
    "start_span",
    "to_chrome_trace",
    "tracing",
    "use_context",
    "write_trace_artifact",
]
