"""Bound monitors: live checking of the paper's guarantees.

The theorems promise *per-execution* quantities — Theorem 3.1 bounds
every Algorithm 1 process by ``⌊3n/2⌋ + 4`` activations, Theorem 3.11
bounds Algorithm 2 by ``3n + 8``, Theorem 4.4 gives Algorithm 3 an
``O(log* n)`` budget, and all three promise a proper coloring within a
fixed palette.  A :class:`BoundMonitor` checks such a promise *while
the execution runs*: both engines feed it every step that activates a
working process, so the first violating step is flagged with its full
context (time index, process, observed value, budget) instead of being
discovered in post-processing with the trace already gone.

Monitors are pluggable — pass any list to
:func:`repro.model.execution.run_execution` via ``monitors=`` — and
engine-neutral: the reference engine and the fast path drive them
through the same three hooks (:meth:`~BoundMonitor.on_run_start`,
:meth:`~BoundMonitor.observe_step`, :meth:`~BoundMonitor.on_run_end`).
When metrics collection is enabled, every violation also increments
the ``bound_violations_total{monitor=...}`` counter and each monitor
publishes its summary gauges, so a ``repro-color metrics`` artifact
records the verdicts.

The catalog at the bottom maps the shipped algorithms to their
paper bounds: ``default_monitors("alg1", ...)`` returns the
Theorem 3.1 activation budget plus palette and proper-coloring
monitors, ready to attach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Union

from repro.errors import (
    ColoringViolation,
    PaletteViolation,
    WaitFreedomViolation,
)
from repro.obs.metrics import active_registry

__all__ = [
    "BoundViolation",
    "BoundMonitor",
    "ActivationBudgetMonitor",
    "PaletteGaugeMonitor",
    "ProperColoringMonitor",
    "BOUND_CATALOG",
    "budget_for",
    "default_monitors",
]


@dataclass(frozen=True)
class BoundViolation:
    """One flagged step: where a promised bound first broke.

    ``time`` is the engine's global time index of the violating step
    (the same index traces and return times use), so a recorded
    schedule can be replayed straight to the failure.
    """

    monitor: str
    time: int
    process: Optional[int]
    observed: Any
    budget: Any
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "monitor": self.monitor,
            "time": self.time,
            "process": self.process,
            "observed": self.observed,
            "budget": self.budget,
            "message": self.message,
        }


class BoundMonitor:
    """Base class: collects violations, optionally raising on the first.

    Subclasses implement the three hooks; ``strict=True`` turns the
    first violation into the matching :class:`~repro.errors.SpecViolation`
    subclass (``strict_error``) instead of recording and continuing.
    """

    name = "monitor"
    strict_error = WaitFreedomViolation

    def __init__(self, *, name: Optional[str] = None, strict: bool = False):
        if name is not None:
            self.name = name
        self.strict = strict
        self.violations: List[BoundViolation] = []

    # -- engine-facing hooks -------------------------------------------
    def on_run_start(self, topology, algorithm, inputs) -> None:
        """Called once before the first step."""

    def observe_step(self, time, working, returned, activations) -> None:
        """Called after each step that activated >= 1 working process.

        ``working`` is the activated working set, ``returned`` maps the
        processes that returned *at this step* to their outputs, and
        ``activations`` is indexable by process id with the count
        *including* this step.
        """

    def on_run_end(self, result) -> None:
        """Called once with the finished ``ExecutionResult``."""

    # -- shared machinery ----------------------------------------------
    @property
    def ok(self) -> bool:
        """Whether no violation was observed."""
        return not self.violations

    def flag(
        self,
        time: int,
        process: Optional[int],
        observed: Any,
        budget: Any,
        message: str,
    ) -> None:
        """Record one violation (and raise it when strict)."""
        violation = BoundViolation(
            monitor=self.name,
            time=time,
            process=process,
            observed=observed,
            budget=budget,
            message=message,
        )
        self.violations.append(violation)
        registry = active_registry()
        if registry is not None:
            registry.inc("bound_violations_total", 1, monitor=self.name)
        if self.strict:
            raise self.strict_error(message)

    def report(self) -> Dict[str, Any]:
        """JSON-serializable verdict for artifacts."""
        return {
            "monitor": self.name,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }


#: A budget is a flat number, a per-process mapping, or ``fn(n)``.
Budget = Union[int, float, Mapping[int, float], Callable[[int], float]]


class ActivationBudgetMonitor(BoundMonitor):
    """Checks a per-process activation budget live (wait-freedom).

    A process violates the budget the first time it is activated more
    than ``budget`` times without having returned; the violating step
    is flagged with the process, its count and the budget.  ``budget``
    may be a number (the paper's global bounds), a mapping ``p ->
    budget`` (the per-process Lemma 3.9 / 3.14 bounds), or a callable
    ``fn(n)`` resolved when the run starts.
    """

    name = "activation-budget"
    strict_error = WaitFreedomViolation

    def __init__(
        self,
        budget: Budget,
        *,
        name: Optional[str] = None,
        strict: bool = False,
    ):
        super().__init__(name=name, strict=strict)
        self._budget_spec = budget
        self._budgets: Optional[Mapping[int, float]] = None
        self._flat: Optional[float] = None
        self._flagged: set = set()
        self.max_observed = 0

    def _budget_of(self, p: int) -> Optional[float]:
        if self._flat is not None:
            return self._flat
        if self._budgets is not None:
            return self._budgets.get(p)
        return None

    def on_run_start(self, topology, algorithm, inputs) -> None:
        spec = self._budget_spec
        if callable(spec):
            spec = spec(topology.n)
        if isinstance(spec, Mapping):
            self._budgets = spec
            self._flat = None
        else:
            self._flat = float(spec)
        self._flagged = set()
        self.max_observed = 0

    def observe_step(self, time, working, returned, activations) -> None:
        for p in working:
            count = activations[p]
            if count > self.max_observed:
                self.max_observed = count
            if p in returned or p in self._flagged:
                continue
            budget = self._budget_of(p)
            if budget is not None and count > budget:
                self._flagged.add(p)
                self.flag(
                    time,
                    p,
                    count,
                    budget,
                    f"process {p} reached activation {count} > budget "
                    f"{budget:g} without returning (monitor {self.name!r}, "
                    f"step t={time})",
                )

    def on_run_end(self, result) -> None:
        registry = active_registry()
        if registry is not None and self._flat is not None:
            registry.set_gauge(
                "bound_margin",
                self._flat - self.max_observed,
                monitor=self.name,
            )

    def report(self) -> Dict[str, Any]:
        out = super().report()
        out["budget"] = (
            self._flat if self._flat is not None else "per-process"
        )
        out["max_observed"] = self.max_observed
        return out


class PaletteGaugeMonitor(BoundMonitor):
    """Tracks the live palette of returned colors.

    Publishes the ``palette_size`` gauge as colors appear; when a
    ``palette`` is given, any out-of-palette return is flagged at its
    step (the live form of the Theorem palettes — 6 colors for
    Algorithm 1, 5 for Algorithms 2/3).
    """

    name = "palette"
    strict_error = PaletteViolation

    def __init__(
        self,
        palette: Optional[Iterable[Any]] = None,
        *,
        name: Optional[str] = None,
        strict: bool = False,
    ):
        super().__init__(name=name, strict=strict)
        self._allowed = set(palette) if palette is not None else None
        self.colors: set = set()

    def on_run_start(self, topology, algorithm, inputs) -> None:
        self.colors = set()

    def observe_step(self, time, working, returned, activations) -> None:
        if not returned:
            return
        for p, color in returned.items():
            self.colors.add(color)
            if self._allowed is not None and color not in self._allowed:
                self.flag(
                    time,
                    p,
                    color,
                    sorted(self._allowed, key=repr),
                    f"process {p} returned out-of-palette color {color!r} "
                    f"at t={time}",
                )
        registry = active_registry()
        if registry is not None:
            registry.set_gauge(
                "palette_size", len(self.colors), monitor=self.name
            )

    def report(self) -> Dict[str, Any]:
        out = super().report()
        out["palette_size"] = len(self.colors)
        return out


class ProperColoringMonitor(BoundMonitor):
    """Asserts proper coloring *at each return*, not post-hoc.

    When a process returns, its color is checked against every
    already-returned neighbor — the paper's correctness condition on
    the graph induced by terminating processes, enforced at the first
    step it can possibly break.
    """

    name = "proper-coloring"
    strict_error = ColoringViolation

    def __init__(self, *, name: Optional[str] = None, strict: bool = False):
        super().__init__(name=name, strict=strict)
        self._neighbors: List[tuple] = []
        self._outputs: Dict[int, Any] = {}

    def on_run_start(self, topology, algorithm, inputs) -> None:
        self._neighbors = [
            topology.neighbors(p) for p in topology.processes()
        ]
        self._outputs = {}

    def observe_step(self, time, working, returned, activations) -> None:
        for p, color in returned.items():
            for q in self._neighbors[p]:
                if q in self._outputs and self._outputs[q] == color:
                    self.flag(
                        time,
                        p,
                        color,
                        None,
                        f"monochromatic edge {p} ~ {q}: both colored "
                        f"{color!r} (p returned at t={time})",
                    )
            self._outputs[p] = color


# ----------------------------------------------------------------------
# Catalog: algorithm name -> paper bound
# ----------------------------------------------------------------------

def _logstar_budget(n: int) -> int:
    from repro.analysis.complexity import logstar_budget

    return int(math.ceil(logstar_budget(n)))


def _theorem_3_1(n: int) -> int:
    from repro.analysis.complexity import theorem_3_1_bound

    return theorem_3_1_bound(n)


def _theorem_3_11(n: int) -> int:
    from repro.analysis.complexity import theorem_3_11_bound

    return theorem_3_11_bound(n)


#: Algorithm registry name -> (bound label, budget fn(n) -> int).
#: ``alg1`` is Theorem 3.1's ``⌊3n/2⌋ + 4``; ``alg2`` Theorem 3.11's
#: ``3n + 8``; the Algorithm 3 family gets the calibrated ``O(log* n)``
#: budget of Theorem 4.4 (see ``logstar_budget``).
BOUND_CATALOG: Dict[str, Any] = {
    "alg1": ("theorem-3.1", _theorem_3_1),
    "alg2": ("theorem-3.11", _theorem_3_11),
    "fast5": ("theorem-4.4", _logstar_budget),
    "fast6": ("theorem-4.4", _logstar_budget),
}


def budget_for(algorithm: str, n: int, *, scale: float = 1.0):
    """``(bound_label, budget)`` for a registered algorithm on ``C_n``.

    ``scale`` multiplies the budget — tests tighten with ``scale < 1``
    to prove violation detection fires.  Raises ``KeyError`` for
    algorithms without a catalogued bound.
    """
    label, fn = BOUND_CATALOG[algorithm]
    return label, int(math.floor(fn(n) * scale))


def default_monitors(
    algorithm: str,
    n: int,
    *,
    scale: float = 1.0,
    strict: bool = False,
) -> List[BoundMonitor]:
    """The monitor suite for one registered algorithm on ``C_n``:
    activation budget (when catalogued) + palette gauge + live proper-
    coloring assertion."""
    from repro.campaign.registry import resolve_palette

    monitors: List[BoundMonitor] = []
    if algorithm in BOUND_CATALOG:
        label, budget = budget_for(algorithm, n, scale=scale)
        monitors.append(
            ActivationBudgetMonitor(budget, name=label, strict=strict)
        )
    monitors.append(
        PaletteGaugeMonitor(resolve_palette(algorithm), strict=strict)
    )
    monitors.append(ProperColoringMonitor(strict=strict))
    return monitors
