"""Exposition: render a metrics snapshot as JSON or Prometheus text.

Two formats, both pure functions of
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`:

* **JSON** (:func:`render_json` / :func:`write_json_artifact`) — the
  machine-readable artifact checked into campaign results and consumed
  by the differential harness;
* **Prometheus text exposition** (:func:`render_prometheus`) —
  counters and gauges verbatim, histograms as summaries (quantile
  series plus ``_sum``/``_count``), suitable for a textfile collector
  or a scrape endpoint.

No HTTP server ships here on purpose: the workloads are batch runs,
so the natural integration points are artifacts and the node-exporter
textfile pattern.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "render_json",
    "render_prometheus",
    "write_json_artifact",
]

#: Histogram stat -> Prometheus summary quantile label.
_QUANTILES = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))


def _snapshot(source: Union[MetricsRegistry, Dict[str, Any]]) -> Dict[str, Any]:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def render_json(
    source: Union[MetricsRegistry, Dict[str, Any]],
    *,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The JSON artifact payload: versioned, metrics plus extras.

    ``extra`` merges additional top-level sections (run config, monitor
    reports) into the artifact.
    """
    payload: Dict[str, Any] = {
        "artifact": "repro-metrics",
        "version": 1,
        "metrics": _snapshot(source),
    }
    if extra:
        payload.update(extra)
    return payload


def write_json_artifact(
    source: Union[MetricsRegistry, Dict[str, Any]],
    path: Union[str, Path],
    *,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write :func:`render_json` to ``path`` and return it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(render_json(source, extra=extra), indent=2, sort_keys=True)
        + "\n"
    )
    return path


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _label_string(labels: Dict[str, str], extra: Dict[str, str] = {}) -> str:
    merged = dict(labels)
    merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"'
        for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    source: Union[MetricsRegistry, Dict[str, Any]]
) -> str:
    """The snapshot in Prometheus text exposition format (0.0.4).

    Counters and gauges render one line per series; histograms render
    as summaries — ``name{quantile=...}``, ``name_sum``, ``name_count``
    — since the registry keeps exact count/sum plus percentiles rather
    than fixed buckets.
    """
    lines: List[str] = []
    for name, entry in sorted(_snapshot(source).items()):
        kind = entry["kind"]
        if kind == "histogram":
            lines.append(f"# TYPE {name} summary")
            for sample in entry["samples"]:
                labels = sample["labels"]
                for stat, quantile in _QUANTILES:
                    lines.append(
                        f"{name}{_label_string(labels, {'quantile': quantile})}"
                        f" {_format_value(sample[stat])}"
                    )
                lines.append(
                    f"{name}_sum{_label_string(labels)}"
                    f" {_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_string(labels)}"
                    f" {_format_value(sample['count'])}"
                )
        else:
            lines.append(f"# TYPE {name} {kind}")
            for sample in entry["samples"]:
                lines.append(
                    f"{name}{_label_string(sample['labels'])}"
                    f" {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
