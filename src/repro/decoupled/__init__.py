"""The DECOUPLED model of [13, 18] (paper §1.4).

* :mod:`repro.decoupled.engine` — synchronous reliable network +
  asynchronous crash-prone processes with message buffers;
* :mod:`repro.decoupled.coloring` — wait-free 3-coloring of the ring
  via announcements (the palette separation vs the paper's ≥5);
* :mod:`repro.decoupled.cole_vishkin` — the [18]-style full-information
  simulation: CV 3-coloring in O(log* n) DECOUPLED rounds.
"""

from repro.decoupled.cole_vishkin import (
    CVFullInfoRing,
    CVInput,
    cv_window_output,
    cv_window_radius,
)
from repro.decoupled.coloring import AnnouncementColoring, AnnouncementState
from repro.decoupled.engine import (
    DecoupledAlgorithm,
    DecoupledExecutor,
    DecoupledOutcome,
    DecoupledResult,
    Emission,
    run_decoupled,
)

__all__ = [
    "AnnouncementColoring",
    "AnnouncementState",
    "CVFullInfoRing",
    "CVInput",
    "DecoupledAlgorithm",
    "DecoupledExecutor",
    "DecoupledOutcome",
    "DecoupledResult",
    "Emission",
    "cv_window_output",
    "cv_window_radius",
    "run_decoupled",
]
