"""Wait-free (Δ+1)-coloring in the DECOUPLED model — 3 colors on rings.

The separation the paper draws in §1.4 made executable: in DECOUPLED,
where the network relays and stores messages regardless of process
crashes, the ring can be wait-free colored with **3 colors**, while the
paper proves its fully asynchronous model needs **5** (Property 2.3).

The protocol (ours; in the spirit of [13] but favoring simplicity over
round-optimality):

* **announce** — at its first activation a process picks the smallest
  color not announced by any neighbor so far, and broadcasts
  ``(x, color)``.
* **resolve** — colors can collide only between neighbors that
  announced in the *same* round (otherwise the earlier announcement
  had already arrived and was avoided).  Conflicts are resolved by
  identifier: the smaller id keeps its color; the larger re-announces
  the smallest color free of all current neighbor announcements.
* **decide** — a process decides its current color at any activation
  *strictly after* its last announcement round, provided every
  conflicting neighbor announcement comes from a larger identifier.
  (Waiting one round guarantees same-round announcements have arrived;
  a larger-id conflicter can never decide that color — it must
  re-announce first — and a still-silent neighbor will see our
  announcement before it ever picks.)

Guarantees (argued in the module tests, incl. brute-force schedule
enumeration on small rings):

* **wait-free**: a process decides within O(1) activations after its
  neighbors' announcements stop changing, and neighbors re-announce at
  most O(chain) times in total — crashed/silent neighbors cost nothing;
* **palette**: first-fit over at most Δ announced neighbor colors, so
  colors lie in ``{0, …, Δ}`` — 3 colors on the ring;
* **proper**: two adjacent decided processes never share a color.

Activation complexity is O(longest monotone id chain) like the greedy
baselines — round-optimality (the O(log* n) of [13]) is obtained
separately via the full-information Cole–Vishkin simulation in
:mod:`repro.decoupled.cole_vishkin`.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

from repro.core.algorithm import mex
from repro.decoupled.engine import DecoupledAlgorithm, DecoupledOutcome, Emission

__all__ = ["AnnouncementColoring", "AnnouncementState"]


class AnnouncementState(NamedTuple):
    """Private state: identifier, current color, last announce round."""

    x: int
    color: Optional[int]
    announce_round: Optional[int]


class _Announce(NamedTuple):
    """Broadcast payload ``(x, color)``."""

    x: int
    color: int


class AnnouncementColoring(DecoupledAlgorithm):
    """Wait-free first-fit coloring with id-resolved conflicts."""

    name = "decoupled-announcement-coloring"

    def initial_state(self, x_input: int) -> AnnouncementState:
        """Start unannounced with identifier ``x_input``."""
        return AnnouncementState(x=x_input, color=None, announce_round=None)

    @staticmethod
    def _latest_neighbor_announcements(
        buffer: Tuple[Tuple[Emission, int], ...],
    ) -> Dict[int, Tuple[int, int]]:
        """``{x_q: (round, color)}`` — latest announcement per neighbor."""
        latest: Dict[int, Tuple[int, int]] = {}
        for emission, distance in buffer:
            if distance != 1:
                continue
            payload = emission.payload
            current = latest.get(payload.x)
            if current is None or emission.round > current[0]:
                latest[payload.x] = (emission.round, payload.color)
        return latest

    def step(self, state: AnnouncementState, buffer, round_index: int) -> DecoupledOutcome:
        """Announce, resolve conflicts, or decide."""
        neighbors = self._latest_neighbor_announcements(buffer)
        taken = {color for (_round, color) in neighbors.values()}

        if state.color is None:
            color = mex(taken)
            new_state = AnnouncementState(state.x, color, round_index)
            return DecoupledOutcome.cont(
                new_state, emit=_Announce(state.x, color),
            )

        loses = any(
            color == state.color and x_q < state.x
            for x_q, (_round, color) in neighbors.items()
        )
        if loses:
            color = mex(taken)
            new_state = AnnouncementState(state.x, color, round_index)
            return DecoupledOutcome.cont(
                new_state, emit=_Announce(state.x, color),
            )

        if round_index > state.announce_round:
            # Same-round announcements have arrived by now; remaining
            # conflicts (if any) are with larger ids, which must
            # re-announce before they could ever decide this color.
            return DecoupledOutcome.decide(state, state.color)

        return DecoupledOutcome.cont(state)
