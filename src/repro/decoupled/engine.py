"""The DECOUPLED model of [13, 18] (paper §1.4).

The model the paper positions itself against: ``n`` asynchronous
crash-prone processes occupy the nodes of a **synchronous, reliable**
network.  Communication is decoupled from computation:

* time advances in global rounds; a message emitted by node ``u`` at
  round ``r`` reaches every node at distance ``d`` at round ``r + d``,
  regardless of whether intermediate or destination processes are
  awake;
* nothing is lost — a process waking up late finds every message that
  ever reached its node stored in a local buffer;
* processes themselves are asynchronous: at each round an adversarial
  subset is activated; an activated process reads its buffer, updates
  its state, and may emit one message (broadcast into the network).

This is strictly stronger than the paper's fully asynchronous model
(where information moves only when processes move): [18] shows every
O(polylog n)-round LOCAL task transfers to DECOUPLED at constant
overhead, and [13] wait-free 3-colors the ring here — while the paper
proves ≥5 colors are needed in its model.  Experiment E15 exhibits the
separation with this substrate.

The engine pre-computes all pairwise distances (BFS) once; message
delivery is then a timestamp comparison, so buffers can be represented
as "all messages emitted by round ``t − d(u, v)``".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.model.schedule import Schedule, validate_step
from repro.model.topology import Topology
from repro.types import ProcessId

__all__ = [
    "Emission",
    "DecoupledAlgorithm",
    "DecoupledOutcome",
    "DecoupledResult",
    "DecoupledExecutor",
    "run_decoupled",
]


@dataclass(frozen=True)
class Emission:
    """One message in the network: origin node, emit round, payload."""

    origin: ProcessId
    round: int
    payload: Any


@dataclass(frozen=True)
class DecoupledOutcome:
    """Result of one activation: new state, optional emission/output."""

    state: Any
    emit: Any = None          #: payload to broadcast (None = silent)
    output: Any = None
    decided: bool = False

    @classmethod
    def cont(cls, state: Any, emit: Any = None) -> "DecoupledOutcome":
        """Keep working, optionally emitting ``emit``."""
        return cls(state=state, emit=emit)

    @classmethod
    def decide(cls, state: Any, output: Any, emit: Any = None) -> "DecoupledOutcome":
        """Decide ``output`` (and optionally emit a final message)."""
        return cls(state=state, emit=emit, output=output, decided=True)


class DecoupledAlgorithm:
    """Per-process protocol for the DECOUPLED model.

    ``step`` receives the process's full buffer: every
    :class:`Emission` that has *arrived* at its node by the current
    round (origin distance ``d`` ⇒ arrival at ``emit_round + d``),
    oldest first, each paired with the hop distance it traveled —
    nodes can tell neighbor messages (``distance == 1``) from farther
    ones, but are otherwise anonymous to each other beyond their
    inputs.  The current round number is also passed: the round
    structure is public in this model.
    """

    name = "decoupled-algorithm"

    def initial_state(self, x_input: Any) -> Any:
        """State of a process with input ``x_input``."""
        raise NotImplementedError

    def step(
        self,
        state: Any,
        buffer: Tuple[Tuple[Emission, int], ...],
        round_index: int,
    ) -> DecoupledOutcome:
        """One activation: consume the ``(emission, distance)`` buffer,
        update, maybe emit/decide."""
        raise NotImplementedError


@dataclass
class DecoupledResult:
    """Outputs and accounting of one DECOUPLED execution."""

    n: int
    outputs: Dict[ProcessId, Any]
    activations: Dict[ProcessId, int]
    decision_rounds: Dict[ProcessId, int]
    final_round: int
    emissions: List[Emission] = field(default_factory=list)

    @property
    def all_decided(self) -> bool:
        """Whether every process decided."""
        return len(self.outputs) == self.n

    @property
    def pending(self) -> Set[ProcessId]:
        """Processes that never decided."""
        return {p for p in range(self.n) if p not in self.outputs}

    @property
    def activation_complexity(self) -> int:
        """Max activations of any process (the wait-freedom currency)."""
        return max(self.activations.values(), default=0)


class DecoupledExecutor:
    """Runs a DECOUPLED algorithm under an activation schedule.

    The same :class:`~repro.model.schedule.Schedule` objects drive the
    per-round activation sets; crashes compose via
    :class:`~repro.model.faults.CrashPlan` exactly as in the main model.
    """

    def __init__(self, topology: Topology, algorithm: DecoupledAlgorithm,
                 inputs: Sequence[Any]):
        if len(inputs) != topology.n:
            raise ExecutionError(
                f"got {len(inputs)} inputs for {topology.n} processes"
            )
        self.topology = topology
        self.algorithm = algorithm
        self.inputs = list(inputs)
        self._distances = self._all_distances(topology)

    @staticmethod
    def _all_distances(topology: Topology) -> List[List[int]]:
        """All-pairs hop distances by BFS from every node."""
        n = topology.n
        table = []
        for source in range(n):
            dist = [-1] * n
            dist[source] = 0
            queue = deque([source])
            while queue:
                u = queue.popleft()
                for v in topology.neighbors(u):
                    if dist[v] < 0:
                        dist[v] = dist[u] + 1
                        queue.append(v)
            table.append(dist)
        return table

    def run(self, schedule: Schedule, max_rounds: int = 100_000) -> DecoupledResult:
        """Execute until all decide, the schedule ends, or ``max_rounds``."""
        n = self.topology.n
        states = {p: self.algorithm.initial_state(self.inputs[p]) for p in range(n)}
        outputs: Dict[ProcessId, Any] = {}
        decision_rounds: Dict[ProcessId, int] = {}
        activations = {p: 0 for p in range(n)}
        emissions: List[Emission] = []

        round_index = 0
        for raw_step in schedule.steps(n):
            if len(outputs) == n:
                break
            round_index += 1
            if round_index > max_rounds:
                round_index -= 1
                break
            active = [
                p for p in validate_step(raw_step, n) if p not in outputs
            ]
            # Buffers are computed against emissions of *previous*
            # rounds: a message emitted this round reaches distance-d
            # nodes d rounds later (d >= 1 for other nodes).
            new_emissions: List[Emission] = []
            for p in sorted(active):
                buffer = tuple(
                    (e, self._distances[e.origin][p])
                    for e in emissions
                    if e.round + self._distances[e.origin][p] <= round_index
                )
                outcome = self.algorithm.step(states[p], buffer, round_index)
                activations[p] += 1
                states[p] = outcome.state
                if outcome.emit is not None:
                    new_emissions.append(
                        Emission(origin=p, round=round_index, payload=outcome.emit)
                    )
                if outcome.decided:
                    outputs[p] = outcome.output
                    decision_rounds[p] = round_index
            emissions.extend(new_emissions)

        return DecoupledResult(
            n=n,
            outputs=outputs,
            activations=activations,
            decision_rounds=decision_rounds,
            final_round=round_index,
            emissions=emissions,
        )


def run_decoupled(
    algorithm: DecoupledAlgorithm,
    topology: Topology,
    inputs: Sequence[Any],
    schedule: Schedule,
    *,
    max_rounds: int = 100_000,
) -> DecoupledResult:
    """One-shot convenience wrapper around :class:`DecoupledExecutor`."""
    return DecoupledExecutor(topology, algorithm, inputs).run(
        schedule, max_rounds=max_rounds,
    )
