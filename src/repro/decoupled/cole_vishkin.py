"""Cole–Vishkin in the DECOUPLED model: O(log* n) rounds, 3 colors.

The [18] transfer theorem made executable for the ring: any t-round
LOCAL algorithm runs in O(t) DECOUPLED rounds by *full-information
simulation* — every process broadcasts its input once; the network
floods it; once a process holds the inputs of its radius-R
neighborhood it locally evaluates the LOCAL algorithm's output
function and decides, with R = t + O(1).

Here the LOCAL algorithm is the classic Cole–Vishkin ring 3-coloring
(:mod:`repro.localmodel.cole_vishkin`), so R = (log* + O(1)) + 3 and
the DECOUPLED round complexity is O(log* n) — matching [13]'s headline
for this model, far below the Θ(n)-activation announcement protocol.

Model assumptions (standard for CV, documented per DESIGN.md):

* the ring is **oriented** and processes know their two neighbors'
  identifiers: inputs are ``(x, pred_x, succ_x)`` — the KT1 + oriented
  ring setting in which Cole–Vishkin is usually stated;
* the simulation direction of [18] needs participation: a process can
  only decide once the inputs of its whole radius-R window have been
  emitted, so a *crashed-before-emitting* node inside the window blocks
  its neighbors' windows.  This is the price of round-optimality; the
  announcement protocol of :mod:`repro.decoupled.coloring` is the
  wait-free (but Θ(chain)-activation) counterpart.  [13] combines the
  two regimes; we keep them as separate, individually-verifiable
  components.

The pure function :func:`cv_window_output` computes a node's final CV
color from the id window alone — it is also unit-tested against the
round-by-round LOCAL engine for equality on full rings.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.decoupled.engine import DecoupledAlgorithm, DecoupledOutcome, Emission
from repro.errors import ExecutionError
from repro.localmodel.cole_vishkin import cv_phase_a_rounds, cv_reduce, cv_width_schedule

__all__ = ["cv_window_radius", "cv_window_output", "CVFullInfoRing", "CVInput"]


def cv_window_radius(id_bits: int) -> int:
    """Window radius R needed to evaluate a node's CV output locally.

    Phase A colors of a node after ``k`` reductions depend on its ``k``
    predecessors; Phase B mixes in 3 hops on both sides.  So the output
    of node ``p`` is a function of ids ``p − (phase_a + 3) … p + 3``;
    we use the symmetric radius ``phase_a + 3``.
    """
    return cv_phase_a_rounds(id_bits) + 3


def cv_window_output(window: List[int], center: int, id_bits: int) -> int:
    """The CV 3-coloring output of ``window[center]``.

    ``window`` lists identifiers in ring order (predecessors before
    successors).  Requires ``center ≥ phase_a + 3`` entries on the left
    and 3 on the right.  Deterministic, local — this is the function a
    DECOUPLED process evaluates once flooding has filled its window.
    """
    phase_a = cv_phase_a_rounds(id_bits)
    widths = cv_width_schedule(id_bits)
    if center < phase_a + 3 or len(window) - 1 - center < 3:
        raise ExecutionError("window too small for the CV horizon")

    def phase_a_color(position: int) -> int:
        """Color of window[position] after all Phase A reductions."""
        # After k reductions, node i's color is a function of ids
        # i-k..i; compute the whole needed diagonal iteratively.
        colors = {i: window[i] for i in range(position - phase_a, position + 1)}
        for k in range(phase_a):
            width = widths[k] if k < len(widths) else 3
            colors = {
                i: cv_reduce(colors[i], colors[i - 1], width)
                for i in range(position - phase_a + k + 1, position + 1)
            }
        return colors[position]

    # Phase B: eliminate classes 5, 4, 3 over three synchronous rounds
    # among the 7 relevant nodes centered at `center`.
    positions = range(center - 3, center + 4)
    colors: Dict[int, int] = {i: phase_a_color(i) for i in positions}
    for eliminated in (5, 4, 3):
        updated = dict(colors)
        for i in list(positions)[1:-1]:
            if colors[i] == eliminated:
                taken = {colors[i - 1], colors[i + 1]}
                updated[i] = next(c for c in range(3) if c not in taken)
        colors = updated
        # The window shrinks by one on each side per round; only the
        # center must survive all three rounds.
        positions = range(positions.start + 1, positions.stop - 1)
    return colors[center]


class CVInput(NamedTuple):
    """Input of the full-information simulation: own id plus the two
    neighbor ids in ring orientation (KT1, oriented)."""

    x: int
    pred: int
    succ: int


class _Record(NamedTuple):
    """Broadcast payload: one node's local ring segment."""

    x: int
    pred: int
    succ: int


class _CVState(NamedTuple):
    me: CVInput
    emitted: bool


class CVFullInfoRing(DecoupledAlgorithm):
    """Full-information CV simulation on the oriented ring."""

    name = "decoupled-cv-full-info"

    def __init__(self, id_bits: int = 64):
        self.id_bits = id_bits
        self.radius = cv_window_radius(id_bits)

    def initial_state(self, x_input: CVInput) -> _CVState:
        """Input must be a :class:`CVInput` triple."""
        if not isinstance(x_input, CVInput):
            raise ExecutionError("CVFullInfoRing inputs must be CVInput(x, pred, succ)")
        return _CVState(me=x_input, emitted=False)

    def step(self, state: _CVState, buffer, round_index: int) -> DecoupledOutcome:
        """Emit once; decide when the window is fully flooded."""
        if not state.emitted:
            me = state.me
            return DecoupledOutcome.cont(
                _CVState(me=me, emitted=True),
                emit=_Record(x=me.x, pred=me.pred, succ=me.succ),
            )

        records: Dict[int, _Record] = {}
        for emission, _distance in buffer:
            payload = emission.payload
            records[payload.x] = payload
        me = state.me
        records[me.x] = _Record(me.x, me.pred, me.succ)

        window = self._assemble_window(records, me)
        if window is None:
            return DecoupledOutcome.cont(state)
        ids, center = window
        color = cv_window_output(ids, center, self.id_bits)
        return DecoupledOutcome.decide(state, color)

    def _assemble_window(
        self, records: Dict[int, _Record], me: CVInput,
    ) -> Optional[Tuple[List[int], int]]:
        """Chain predecessor/successor records into the id window."""
        left: List[int] = []
        cursor = records[me.x]
        for _ in range(self.radius):
            pred = records.get(cursor.pred)
            if pred is None:
                return None
            left.append(pred.x)
            cursor = pred
        right: List[int] = []
        cursor = records[me.x]
        for _ in range(3):
            succ = records.get(cursor.succ)
            if succ is None:
                return None
            right.append(succ.x)
            cursor = succ
        window = list(reversed(left)) + [me.x] + right
        return window, self.radius
