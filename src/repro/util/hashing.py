"""Content hashing over canonical JSON — the repo-wide key discipline.

Every subsystem that needs a stable identity for a *description* —
campaign :class:`~repro.campaign.spec.TaskSpec` hashes, journal resume
keys, service request/cache keys — must derive it from the same
canonical encoding, or keys drift apart the first time one caller
tweaks separators or key order.  This module is that single source:

* :func:`canonical_json` — the one true encoding: keys sorted,
  minimal separators, UTF-8.  Two mappings with equal *content*
  encode identically regardless of construction order or process.
* :func:`canonical_hash` — SHA-256 over :func:`canonical_json`,
  truncated to a configurable prefix (16 hex chars by default, ample
  for collision-freedom at campaign/service scale while keeping
  journals and URLs readable).

Determinism contract: both functions are pure, never consult
:func:`hash` (which is salted per process), and behave identically on
any Python ≥ 3.7 (dict ordering is insertion ordering).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

__all__ = ["canonical_json", "canonical_hash"]


def canonical_json(payload: Mapping[str, Any]) -> str:
    """The canonical JSON encoding of a JSON-serializable mapping."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_hash(payload: Mapping[str, Any], *, digest_chars: int = 16) -> str:
    """Stable hex digest of a JSON-serializable mapping.

    Keys are sorted and encoding is canonical, so the digest identifies
    the *content*, independent of dict construction order or process.
    """
    blob = canonical_json(payload)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:digest_chars]
