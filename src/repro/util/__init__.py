"""Small shared utilities with no domain dependencies.

Modules here must be importable from anywhere in the package without
creating cycles: they may depend on the standard library only.
"""

from repro.util.hashing import canonical_hash, canonical_json

__all__ = ["canonical_hash", "canonical_json"]
